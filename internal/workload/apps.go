package workload

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/fsgen"
	"repro/internal/ntos/iomgr"
	"repro/internal/ntos/types"
	"repro/internal/ntos/vmmgr"
	"repro/internal/sim"
)

// pick returns a random element of xs ("" when empty).
func pick(rng *sim.RNG, xs []string) string {
	if len(xs) == 0 {
		return ""
	}
	return xs[rng.Intn(len(xs))]
}

// zipfPick returns a popularity-skewed element (rank-1 most popular).
func zipfPick(z *dist.Zipf, rng *sim.RNG, xs []string) string {
	if len(xs) == 0 {
		return ""
	}
	r := z.Rank(rng) - 1
	if r >= len(xs) {
		r = len(xs) - 1
	}
	return xs[r]
}

// readSizes is the §8.2 request-size mix: "in 59% of the read cases the
// request size is either 512 or 4096 bytes", with strong preferences for
// very small (2–8 bytes) and very large (48 KB+) reads among the rest.
var readSizes = dist.NewChoice(
	[]float64{512, 4096, 2, 4, 8, 1024, 2048, 8192, 16384, 49152, 65536, 131072},
	[]float64{24, 35, 4, 4, 4, 4, 4, 6, 5, 4, 4, 2},
)

// writeSizes is more diverse in the sub-1024-byte range ("probably
// reflecting the writing of single data-structures", §8.2).
var writeSizes = dist.NewChoice(
	[]float64{16, 64, 128, 256, 512, 1024, 4096, 8192, 32768, 65536},
	[]float64{8, 10, 10, 10, 12, 12, 18, 10, 6, 4},
)

// Notepad performs the §1 save sequence: "saving this to a file will
// trigger 26 system calls, including 3 failed open attempts, 1 file
// overwrite and 4 additional file open and close sequences".
type Notepad struct {
	P   *Proc
	Lay *fsgen.Layout
	gap *dist.OnOff
}

// NewNotepad builds the editor model.
func NewNotepad(p *Proc, lay *fsgen.Layout) *Notepad {
	return &Notepad{P: p, Lay: lay, gap: dist.NewOnOff(
		dist.NewBoundedPareto(30, 1800, 1.4),  // editing sessions: 30 s – 30 min
		dist.NewBoundedPareto(60, 14400, 1.2), // between documents
		dist.NewBoundedPareto(5, 300, 1.3),    // between saves
	)}
}

// AppName implements App.
func (n *Notepad) AppName() string { return "notepad" }

// Burst implements App: one document save.
func (n *Notepad) Burst() sim.Duration {
	p := n.P
	doc := pick(p.rng, n.Lay.Documents)
	if doc == "" {
		return sim.Minute
	}
	// 3 failed open attempts (association/alternate-name probes).
	p.ProbeExists(doc + ".sav")
	p.ProbeExists(doc + ".~tmp")
	p.Open(`\nosuch\`+fmt.Sprintf("assoc%d.ini", p.rng.Intn(100)),
		types.AccessRead, types.DispositionOpen, 0, 0)

	// Office-style lock file: created with FILE_CREATE, so a stale lock
	// from an earlier save fails with a name collision (the §8.4 "creation
	// of a file was requested, but it already did exist" population).
	lock := doc + ".lck"
	if lh, st := p.Open(lock, types.AccessWrite, types.DispositionCreate, 0, 0); !st.IsError() {
		p.Write(lh, 64)
		p.Close(lh)
	}

	// Read the current content.
	if h, st := p.Open(doc, types.AccessRead, types.DispositionOpen, 0, 0); !st.IsError() {
		p.ReadWhole(h, 4096)
		p.Close(h)
	}
	size, _ := p.StatFile(doc)
	if size <= 0 {
		size = 2000
	}

	// Write the new content to a temp file.
	tmp := n.Lay.TempDir + fmt.Sprintf(`\np%04x.tmp`, p.rng.Intn(1<<16))
	if h, st := p.Open(tmp, types.AccessWrite, types.DispositionCreate, 0, 0); !st.IsError() {
		p.WriteChunked(h, size+int64(p.rng.Intn(512)), writeSizes)
		p.Close(h)
	}
	// Overwrite the original (the "1 file overwrite").
	if h, st := p.Open(doc, types.AccessWrite, types.DispositionOverwriteIf, 0, 0); !st.IsError() {
		p.WriteChunked(h, size+int64(p.rng.Intn(512)), writeSizes)
		p.Close(h)
	}
	// Delete the temp file; release the lock most of the time (stale
	// locks feed the next save's collision).
	p.DeleteFile(tmp)
	if p.rng.Bool(0.7) {
		p.DeleteFile(doc + ".lck")
	}

	// 4 additional open/close sequences (attribute/metadata touches).
	for i := 0; i < 4; i++ {
		p.StatFile(doc)
	}
	return n.gap.NextDuration(p.rng)
}

// Explorer is the GUI shell: its file-system interaction is determined by
// the structure and content of the file system, not user requests (§7).
// It is the machine's main source of control and directory operations —
// the traffic behind "74% of the file opens are to perform a control or
// directory operation" and the up-to-40/second "is volume mounted" FSCTLs.
type Explorer struct {
	P    *Proc
	Lay  *fsgen.Layout
	Dirs []string
	gap  *dist.OnOff
	pop  *dist.Zipf
}

// NewExplorer builds the shell model.
func NewExplorer(p *Proc, lay *fsgen.Layout) *Explorer {
	dirs := []string{lay.Profile, lay.DocsDir, lay.SystemDir, lay.TempDir, `\`}
	if lay.DevDir != "" {
		dirs = append(dirs, lay.DevDir)
	}
	return &Explorer{P: p, Lay: lay, Dirs: dirs,
		gap: dist.NewOnOff(
			dist.NewBoundedPareto(2, 120, 1.3),   // browsing bursts
			dist.NewBoundedPareto(20, 7200, 1.1), // between bursts
			dist.NewBoundedPareto(0.2, 10, 1.3),  // between navigations
		),
		pop: dist.NewZipf(150, 0.95),
	}
}

// AppName implements App.
func (e *Explorer) AppName() string { return "explorer" }

// Burst implements App: one navigation — name validation, directory
// enumeration, per-item attribute probes.
func (e *Explorer) Burst() sim.Duration {
	p := e.P
	dir := pick(p.rng, e.Dirs)

	// Win32 name validation issues "is volume mounted" FSCTLs.
	if vh, st := p.Open(`\`, types.AccessAttributes, types.DispositionOpen,
		types.OptDirectoryFile, 0); !st.IsError() {
		n := 1 + p.rng.Intn(4)
		for i := 0; i < n; i++ {
			p.M.IO.FsControl(p.PID, vh, types.FsctlIsVolumeMounted)
			p.M.Sched.Advance(sim.FromMicroseconds(200))
		}
		p.Close(vh)
	}

	// Enumerate the directory.
	h, st := p.Open(dir, types.AccessRead, types.DispositionOpen, types.OptDirectoryFile, 0)
	if st.IsError() {
		return e.gap.NextDuration(p.rng)
	}
	entries, _ := p.M.IO.QueryDirectory(p.PID, h)
	p.Close(h)

	// Probe attributes (and icons) of a handful of entries: attribute-only
	// opens over layout files near this directory.
	probes := 8 + p.rng.Intn(11)
	if entries < int64(probes) && entries > 0 {
		probes = int(entries)
	}
	for i := 0; i < probes; i++ {
		var f string
		switch p.rng.Intn(3) {
		case 0:
			f = zipfPick(e.pop, p.rng, e.Lay.Documents)
		case 1:
			f = zipfPick(e.pop, p.rng, e.Lay.Executables)
		default:
			f = zipfPick(e.pop, p.rng, e.Lay.Libraries)
		}
		if f != "" {
			p.StatFile(f)
			// Icon/type extraction: the shell reads the header of
			// executables and the first block of documents — a large
			// population of short read-only sessions.
			if p.rng.Bool(0.55) {
				if h, st := p.Open(f, types.AccessRead, types.DispositionOpen, 0, 0); !st.IsError() {
					if size, _ := p.M.IO.QueryInformation(p.PID, h); size <= 16384 {
						// Small files are slurped whole (type sniffing).
						p.ReadWhole(h, 4096)
					} else {
						p.Read(h, 2+p.rng.Intn(2)*2046) // magic probe or ~2 KB header
						if p.rng.Bool(0.5) {
							p.Read(h, 4096)
						}
					}
					p.Close(h)
				}
			}
		}
		p.M.Sched.Advance(sim.FromMicroseconds(300))
	}
	// Desktop.ini probe: a classic failed open.
	p.Open(dir+`\desktop.ini`, types.AccessRead, types.DispositionOpen, 0, 0)
	return e.gap.NextDuration(p.rng)
}

// WebBrowser models the §5 WWW cache churn: most of a profile's daily
// file changes (up to 90–93%) are cache fills, with existence probes,
// small sequential writes of new entries and occasional evictions.
type WebBrowser struct {
	P   *Proc
	Lay *fsgen.Layout
	gap *dist.OnOff
	seq int
}

// NewWebBrowser builds the browser model.
func NewWebBrowser(p *Proc, lay *fsgen.Layout) *WebBrowser {
	return &WebBrowser{P: p, Lay: lay, gap: dist.NewOnOff(
		dist.NewBoundedPareto(10, 1200, 1.2),  // browsing sessions
		dist.NewBoundedPareto(30, 10800, 1.1), // away
		dist.NewBoundedPareto(0.5, 60, 1.4),   // between pages
	)}
}

// AppName implements App.
func (w *WebBrowser) AppName() string { return "iexplore" }

// Burst implements App: one page load.
func (w *WebBrowser) Burst() sim.Duration {
	p := w.P
	// Cache lookups: some hit (read), some miss (probe fails, then fill).
	objects := 2 + p.rng.Intn(7)
	for i := 0; i < objects; i++ {
		if len(w.Lay.WebFiles) > 0 && p.rng.Bool(0.84) {
			// Hit: read an existing cache entry.
			f := pick(p.rng, w.Lay.WebFiles)
			if h, st := p.Open(f, types.AccessRead, types.DispositionOpen, 0, 0); !st.IsError() {
				p.ReadWhole(h, 4096)
				p.Close(h)
			}
			continue
		}
		// Miss: probe fails, then a new entry is written.
		w.seq++
		name := w.Lay.WebCache + fmt.Sprintf(`\cache%d\dl%06x.htm`, w.seq%4, w.seq)
		p.ProbeExists(name)
		h, st := p.Open(name, types.AccessWrite, types.DispositionCreate, 0, 0)
		if st.IsError() {
			continue
		}
		size := int64(dist.NewLognormal(8, 1.4).Sample(p.rng))
		if size < 64 {
			size = 64
		}
		p.WriteChunked(h, size, writeSizes)
		p.Close(h)
		w.Lay.WebFiles = append(w.Lay.WebFiles, name)
		// Cache eviction keeps the cache bounded: delete an old entry.
		if len(w.Lay.WebFiles) > 4000 {
			victim := w.Lay.WebFiles[p.rng.Intn(len(w.Lay.WebFiles)/4)]
			p.DeleteFile(victim)
		}
	}
	// History/index update: hash-bucket lookups with in-place rewrites —
	// the random read/write pattern behind the paper's RW class (74% of
	// RW accesses are random).
	hist := w.Lay.Profile + `\history.dat`
	if h, st := p.Open(hist, types.AccessRead|types.AccessWrite,
		types.DispositionOpenIf, 0, 0); !st.IsError() {
		size, _ := p.M.IO.QueryInformation(p.PID, h)
		if size < 65536 {
			p.WriteAt(h, size, 65536)
			size = 65536
		}
		for i := 0; i < 2+p.rng.Intn(4); i++ {
			bucket := int64(p.rng.Intn(int(size/4096))) * 4096
			p.ReadAt(h, bucket, 4096)
			if p.rng.Bool(0.7) {
				p.WriteAt(h, bucket, 512)
			}
		}
		p.Close(h)
	}
	return w.gap.NextDuration(p.rng)
}

// Winlogon synchronises the user profile at logon/logoff — the process
// whose lifetime "is determined by the number and size of files in the
// user's profile" (§7), and the source of profile-tree dominance in the
// §5 daily change counts.
type Winlogon struct {
	P   *Proc
	Lay *fsgen.Layout
	seq int
}

// NewWinlogon builds the logon model.
func NewWinlogon(p *Proc, lay *fsgen.Layout) *Winlogon {
	return &Winlogon{P: p, Lay: lay}
}

// Logon downloads profile changes from the central server: a burst of
// small file creates/overwrites in the profile tree.
func (w *Winlogon) Logon() {
	p := w.P
	n := 12 + p.rng.Intn(70)
	for i := 0; i < n; i++ {
		w.seq++
		var name string
		if p.rng.Bool(0.3) && len(w.Lay.Documents) > 0 {
			name = pick(p.rng, w.Lay.Documents) // refresh an existing file
		} else {
			name = w.Lay.Profile + fmt.Sprintf(`\Application Data\sync%05d.dat`, w.seq)
		}
		h, st := p.Open(name, types.AccessWrite, types.DispositionOverwriteIf, 0, 0)
		if st.IsError() {
			continue
		}
		size := int64(dist.NewLognormal(7.5, 1.5).Sample(p.rng))
		if size < 32 {
			size = 32
		}
		p.WriteChunked(h, size, writeSizes)
		p.Close(h)
		p.M.Sched.Advance(sim.FromMicroseconds(500 + float64(p.rng.Intn(3000))))
	}
}

// Logoff migrates profile changes back: reads over the changed files.
func (w *Winlogon) Logoff() {
	p := w.P
	n := 10 + p.rng.Intn(60)
	for i := 0; i < n; i++ {
		f := pick(p.rng, w.Lay.WebFiles)
		if p.rng.Bool(0.4) {
			f = pick(p.rng, w.Lay.Documents)
		}
		if f == "" {
			continue
		}
		if h, st := p.Open(f, types.AccessRead, types.DispositionOpen, 0, 0); !st.IsError() {
			p.ReadWhole(h, 16384)
			p.Close(h)
		}
	}
}

// DevBuild models the development workload: compile sources to objects,
// then rewrite the 5–8 MB precompiled-header / incremental-link files
// that produced the paper's peak throughput (§6.1: "The peak load
// reported for Windows NT was for a development station, where in a short
// period a series of medium size files (5-8 Mb) ... was read and
// written").
type DevBuild struct {
	P   *Proc
	Lay *fsgen.Layout
	VM  *vmmgr.Manager
	gap *dist.OnOff
}

// NewDevBuild builds the compiler model.
func NewDevBuild(p *Proc, lay *fsgen.Layout) *DevBuild {
	return &DevBuild{P: p, Lay: lay, VM: p.M.VM, gap: dist.NewOnOff(
		dist.NewBoundedPareto(60, 1800, 1.3),    // build-heavy stretches
		dist.NewBoundedPareto(600, 28800, 1.15), // long quiet spells
		dist.NewBoundedPareto(90, 3600, 1.25),   // between builds
	)}
}

// AppName implements App.
func (d *DevBuild) AppName() string { return "cl" }

// Burst implements App: one incremental build.
func (d *DevBuild) Burst() sim.Duration {
	p := d.P
	if len(d.Lay.DevSources) == 0 {
		return sim.Hour
	}
	// Load the compiler (image + DLLs through the VM manager).
	if exe := pick(p.rng, d.Lay.Executables); exe != "" {
		d.VM.LoadImage(p.PID, p.path(exe))
	}
	for i := 0; i < 2+p.rng.Intn(4); i++ {
		if dll := pick(p.rng, d.Lay.Libraries); dll != "" {
			d.VM.LoadImage(p.PID, p.path(dll))
		}
	}
	// Compile a handful of translation units.
	units := 1 + p.rng.Intn(8)
	for u := 0; u < units; u++ {
		src := pick(p.rng, d.Lay.DevSources)
		// Include probing: a couple of failed opens along the include path.
		p.Open(src+`.inc`, types.AccessRead, types.DispositionOpen, 0, 0)
		if h, st := p.Open(src, types.AccessRead, types.DispositionOpen,
			types.OptSequentialOnly, 0); !st.IsError() {
			p.ReadWhole(h, 4096)
			p.Close(h)
		}
		// A few headers.
		for i := 0; i < 2+p.rng.Intn(6); i++ {
			hdr := pick(p.rng, d.Lay.DevSources)
			if h, st := p.Open(hdr, types.AccessRead, types.DispositionOpen, 0, 0); !st.IsError() {
				p.ReadWhole(h, 4096)
				p.Close(h)
			}
		}
		// Write the object file: a FILE_CREATE attempt first (collides
		// with the previous build's output), then the overwrite.
		obj := pick(p.rng, d.Lay.DevObjects)
		if obj == "" {
			continue
		}
		p.Open(obj, types.AccessWrite, types.DispositionCreate, 0, 0)
		if h, st := p.Open(obj, types.AccessWrite, types.DispositionOverwriteIf, 0, 0); !st.IsError() {
			p.WriteStream(h, int64(8000+p.rng.Intn(120000)), 4096)
			p.Close(h)
		}
	}
	// The peak-load tail: read+write the 5–8 MB pch/ilk state.
	pch := d.Lay.DevDir + `\project.pch`
	ilk := d.Lay.DevDir + `\project.ilk`
	size := int64(5<<20) + p.rng.Int63n(3<<20)
	for _, f := range []string{pch, ilk} {
		if h, st := p.Open(f, types.AccessRead, types.DispositionOpen, 0, 0); !st.IsError() {
			p.ReadWhole(h, 65536)
			p.Close(h)
		}
		if h, st := p.Open(f, types.AccessWrite, types.DispositionOverwriteIf, 0, 0); !st.IsError() {
			p.WriteStream(h, size, 8192)
			p.Close(h)
		}
	}
	return d.gap.NextDuration(p.rng)
}

// MailClient polls and reads mailboxes; the non-Microsoft variant writes
// "a single 4 Mbyte buffer ... to its files" (§10).
type MailClient struct {
	P      *Proc
	Lay    *fsgen.Layout
	BigBuf bool // the 4 MB-single-buffer mailer
	gap    *dist.OnOff
}

// NewMailClient builds the mail model.
func NewMailClient(p *Proc, lay *fsgen.Layout, bigBuf bool) *MailClient {
	return &MailClient{P: p, Lay: lay, BigBuf: bigBuf, gap: dist.NewOnOff(
		dist.NewBoundedPareto(30, 1800, 1.3),
		dist.NewBoundedPareto(60, 7200, 1.2),
		dist.NewBoundedPareto(2, 300, 1.3),
	)}
}

// AppName implements App.
func (mc *MailClient) AppName() string {
	if mc.BigBuf {
		return "bigmail"
	}
	return "mailclient"
}

// Burst implements App: one poll or message handling step.
func (mc *MailClient) Burst() sim.Duration {
	p := mc.P
	mbx := pick(p.rng, mc.Lay.MailFiles)
	if mbx == "" {
		return sim.Hour
	}
	// Poll: check the mailbox attributes.
	size, st := p.StatFile(mbx)
	if st.IsError() {
		return mc.gap.NextDuration(p.rng)
	}
	switch p.rng.Intn(3) {
	case 0:
		// Read recent messages: random access near the tail.
		if h, st := p.Open(mbx, types.AccessRead, types.DispositionOpen, 0, 0); !st.IsError() {
			for i := 0; i < 4+p.rng.Intn(9); i++ {
				off := size - int64(p.rng.Intn(1500000))
				if off < 0 {
					off = 0
				}
				p.ReadAt(h, off, int(readSizes.Sample(p.rng)))
				p.think(p.readGap)
			}
			p.Close(h)
		}
	case 1:
		// Append a message.
		if h, st := p.Open(mbx, types.AccessRead|types.AccessWrite,
			types.DispositionOpenIf, 0, 0); !st.IsError() {
			if mc.BigBuf && p.rng.Bool(0.4) {
				p.WriteAt(h, size, 4<<20) // the single 4 MB buffer
			} else {
				p.WriteChunked(h, int64(2000+p.rng.Intn(30000)), writeSizes)
			}
			p.Close(h)
		}
	default:
		// Compact: read-modify-write through a temp file, then overwrite.
		tmp := mc.Lay.TempDir + fmt.Sprintf(`\mail%04x.tmp`, p.rng.Intn(1<<16))
		if h, st := p.Open(mbx, types.AccessRead, types.DispositionOpen,
			types.OptSequentialOnly, 0); !st.IsError() {
			p.ReadWhole(h, 65536)
			p.Close(h)
		}
		if h, st := p.Open(tmp, types.AccessWrite, types.DispositionCreate, 0, 0); !st.IsError() {
			p.WriteStream(h, size/2+1, 8192)
			p.Close(h)
		}
		p.DeleteFile(tmp)
	}
	return mc.gap.NextDuration(p.rng)
}

// JavaTool models "some of the Microsoft Java Tools read files in 2 and 4
// byte sequences, often resulting in thousands of reads for a single
// class file" (§10).
type JavaTool struct {
	P   *Proc
	Lay *fsgen.Layout
	gap *dist.OnOff
}

// NewJavaTool builds the model.
func NewJavaTool(p *Proc, lay *fsgen.Layout) *JavaTool {
	return &JavaTool{P: p, Lay: lay, gap: dist.NewOnOff(
		dist.NewBoundedPareto(20, 600, 1.3),
		dist.NewBoundedPareto(300, 28800, 1.2),
		dist.NewBoundedPareto(1, 60, 1.3),
	)}
}

// AppName implements App.
func (j *JavaTool) AppName() string { return "jvc" }

// Burst implements App: parse one class file in 2–4 byte reads.
func (j *JavaTool) Burst() sim.Duration {
	p := j.P
	f := pick(p.rng, j.Lay.DevObjects)
	if f == "" {
		f = pick(p.rng, j.Lay.Documents)
	}
	if f == "" {
		return sim.Hour
	}
	h, st := p.Open(f, types.AccessRead, types.DispositionOpen, 0, 0)
	if st.IsError() {
		return j.gap.NextDuration(p.rng)
	}
	// Cap the number of tiny reads per burst to bound burst length.
	reads := 500 + p.rng.Intn(2500)
	for i := 0; i < reads; i++ {
		n, st := p.Read(h, 2+2*p.rng.Intn(2))
		if st.IsError() || n == 0 {
			break
		}
	}
	p.Close(h)
	return j.gap.NextDuration(p.rng)
}

// FrontPage "never keeps files open for longer then a few milliseconds"
// (§8.1): tight open→transfer→close cycles over web documents.
type FrontPage struct {
	P   *Proc
	Lay *fsgen.Layout
	gap *dist.OnOff
}

// NewFrontPage builds the model.
func NewFrontPage(p *Proc, lay *fsgen.Layout) *FrontPage {
	return &FrontPage{P: p, Lay: lay, gap: dist.NewOnOff(
		dist.NewBoundedPareto(10, 900, 1.3),
		dist.NewBoundedPareto(120, 14400, 1.2),
		dist.NewBoundedPareto(0.2, 30, 1.3),
	)}
}

// AppName implements App.
func (f *FrontPage) AppName() string { return "frontpage" }

// Burst implements App.
func (f *FrontPage) Burst() sim.Duration {
	p := f.P
	doc := pick(p.rng, f.Lay.Documents)
	if doc == "" {
		return sim.Hour
	}
	if h, st := p.Open(doc, types.AccessRead, types.DispositionOpen, 0, 0); !st.IsError() {
		p.ReadWhole(h, 8192)
		p.Close(h)
	}
	if p.rng.Bool(0.4) {
		if h, st := p.Open(doc, types.AccessWrite, types.DispositionOverwriteIf, 0, 0); !st.IsError() {
			p.WriteStream(h, int64(1000+p.rng.Intn(20000)), 8192)
			p.Close(h)
		}
	}
	return f.gap.NextDuration(p.rng)
}

// LoadWC "manages a user's web subscription content" and keeps "a large
// number of files open for the duration of the complete user session,
// which may be days or weeks" (§8.1).
type LoadWC struct {
	P    *Proc
	Lay  *fsgen.Layout
	open []iomgr.Handle
	gap  *dist.OnOff
}

// NewLoadWC builds the model.
func NewLoadWC(p *Proc, lay *fsgen.Layout) *LoadWC {
	return &LoadWC{P: p, Lay: lay, gap: dist.NewOnOff(
		dist.NewBoundedPareto(10, 300, 1.3),
		dist.NewBoundedPareto(600, 43200, 1.2),
		dist.NewBoundedPareto(5, 120, 1.3),
	)}
}

// AppName implements App.
func (l *LoadWC) AppName() string { return "loadwc" }

// Burst implements App: hold a working set of subscription files open
// indefinitely, occasionally touching them.
func (l *LoadWC) Burst() sim.Duration {
	p := l.P
	if len(l.open) < 12 {
		f := pick(p.rng, l.Lay.WebFiles)
		if f != "" {
			if h, st := p.Open(f, types.AccessRead, types.DispositionOpen, 0, 0); !st.IsError() {
				l.open = append(l.open, h)
			}
		}
	}
	// Touch a held file; occasionally rotate one out after its long hold
	// (subscription content refreshed).
	if len(l.open) > 0 {
		h := l.open[p.rng.Intn(len(l.open))]
		p.ReadAt(h, 0, 4096)
		if p.rng.Bool(0.05) {
			i := p.rng.Intn(len(l.open))
			p.Close(l.open[i])
			l.open = append(l.open[:i], l.open[i+1:]...)
		}
	}
	return l.gap.NextDuration(p.rng)
}

// CloseAll releases held handles (study teardown).
func (l *LoadWC) CloseAll() {
	for _, h := range l.open {
		l.P.Close(h)
	}
	l.open = nil
}

// DBService models the database/service engines of §9: caching disabled
// at open time (the 0.2% of files, "76% of those files were data files
// from opened by the 'system' process"), read-write access with
// write-through, files held open for most of the process lifetime.
type DBService struct {
	P      *Proc
	Lay    *fsgen.Layout
	db     iomgr.Handle
	ok     bool
	bursts int
	gap    *dist.OnOff
}

// NewDBService builds the model.
func NewDBService(p *Proc, lay *fsgen.Layout) *DBService {
	return &DBService{P: p, Lay: lay, gap: dist.NewOnOff(
		dist.NewBoundedPareto(5, 600, 1.2),
		dist.NewBoundedPareto(20, 3600, 1.15),
		dist.NewBoundedPareto(0.2, 30, 1.3),
	)}
}

// AppName implements App.
func (d *DBService) AppName() string { return "system" }

// Burst implements App: transactions against the always-open store.
func (d *DBService) Burst() sim.Duration {
	p := d.P
	if !d.ok {
		path := d.Lay.Profile + `\Application Data\store.db`
		h, st := p.Open(path, types.AccessRead|types.AccessWrite, types.DispositionOpenIf,
			types.OptNoIntermediateBuffer|types.OptWriteThrough, 0)
		if st.IsError() {
			return sim.Minute
		}
		d.db = h
		d.ok = true
		// Initialise the store.
		p.WriteAt(d.db, 0, 262144)
	}
	// Recycle the store handle every so often: checkpoint-style close and
	// reopen gives the session-lifetime distribution its minutes-long
	// mid-range (§8.1: databases keep files open for 40–50% of their
	// lifetime, not necessarily all of it).
	d.bursts++
	if d.bursts%120 == 0 {
		p.Close(d.db)
		d.ok = false
		return d.gap.NextDuration(p.rng)
	}
	// A transaction: byte-range lock, aligned random reads and writes,
	// unlock — also the file-locking traffic of the paper's §12 list.
	for i := 0; i < 1+p.rng.Intn(5); i++ {
		off := int64(p.rng.Intn(64)) * 4096
		locked := p.rng.Bool(0.6)
		if locked {
			p.M.IO.LockFile(p.PID, d.db, off, 4096)
		}
		p.ReadAt(d.db, off, 4096)
		if p.rng.Bool(0.5) {
			p.WriteAt(d.db, off, 4096)
		}
		if locked {
			p.M.IO.UnlockFile(p.PID, d.db, off, 4096)
		}
		p.think(p.writeGap)
	}
	return d.gap.NextDuration(p.rng)
}

// FlushyApp is the §9.2 anti-pattern: write caching enabled but "the
// dominant strategy used by 87% of those applications was to flush after
// each write operation".
type FlushyApp struct {
	P   *Proc
	Lay *fsgen.Layout
	gap *dist.OnOff
}

// NewFlushyApp builds the model.
func NewFlushyApp(p *Proc, lay *fsgen.Layout) *FlushyApp {
	return &FlushyApp{P: p, Lay: lay, gap: dist.NewOnOff(
		dist.NewBoundedPareto(10, 600, 1.3),
		dist.NewBoundedPareto(300, 21600, 1.2),
		dist.NewBoundedPareto(1, 120, 1.3),
	)}
}

// AppName implements App.
func (f *FlushyApp) AppName() string { return "logwriter" }

// Burst implements App: append a log entry and flush it.
func (f *FlushyApp) Burst() sim.Duration {
	p := f.P
	path := f.Lay.TempDir + `\applog.txt`
	h, st := p.Open(path, types.AccessWrite, types.DispositionOpenIf, 0, 0)
	if st.IsError() {
		return f.gap.NextDuration(p.rng)
	}
	for i := 0; i < 1+p.rng.Intn(4); i++ {
		size, _ := p.M.IO.QueryInformation(p.PID, h)
		p.WriteAt(h, size, 100+p.rng.Intn(800))
		p.M.IO.FlushFileBuffers(p.PID, h) // flush after every write
		p.think(p.writeGap)
	}
	p.Close(h)
	return f.gap.NextDuration(p.rng)
}

// SciApp models the scientific usage: 100–300 MB inputs read in small
// portions "in many cases ... through the use of memory-mapped files"
// (§6.1).
type SciApp struct {
	P   *Proc
	Lay *fsgen.Layout
	gap *dist.OnOff
}

// NewSciApp builds the model.
func NewSciApp(p *Proc, lay *fsgen.Layout) *SciApp {
	return &SciApp{P: p, Lay: lay, gap: dist.NewOnOff(
		dist.NewBoundedPareto(60, 7200, 1.3),
		dist.NewBoundedPareto(300, 28800, 1.2),
		dist.NewBoundedPareto(5, 600, 1.3),
	)}
}

// AppName implements App.
func (s *SciApp) AppName() string { return "simproc" }

// Burst implements App: one analysis pass over a window of a dataset.
func (s *SciApp) Burst() sim.Duration {
	p := s.P
	data := pick(p.rng, s.Lay.DataFiles)
	if data == "" {
		return sim.Hour
	}
	h, st := p.Open(data, types.AccessRead, types.DispositionOpen, 0, 0)
	if st.IsError() {
		return s.gap.NextDuration(p.rng)
	}
	if p.rng.Bool(0.4) {
		// Direct random windows through ReadFile — large-file random
		// access contributes the random-bytes share of Table 3.
		size, _ := p.M.IO.QueryInformation(p.PID, h)
		for i := 0; i < 15+p.rng.Intn(40); i++ {
			off := p.rng.Int63n(size - 16384 + 1)
			p.ReadAt(h, off, int(readSizes.Sample(p.rng)))
			p.think(p.readGap)
		}
		p.Close(h)
		return s.gap.NextDuration(p.rng)
	}
	sec, mst := p.M.VM.MapFile(p.PID, h)
	if mst.IsError() {
		p.Close(h)
		return s.gap.NextDuration(p.rng)
	}
	// Strided small windows over a region of the mapping.
	base := p.rng.Int63n(sec.Size()/2 + 1)
	stride := int64(64 << 10)
	for i := 0; i < 20+p.rng.Intn(60); i++ {
		sec.Read(base+int64(i)*stride, 4096+p.rng.Intn(12288))
		p.think(p.readGap)
	}
	// Write a small result file.
	out := s.Lay.DataDir + fmt.Sprintf(`\result%04x.out`, p.rng.Intn(1<<16))
	if oh, ost := p.Open(out, types.AccessWrite, types.DispositionOverwriteIf, 0, 0); !ost.IsError() {
		p.WriteStream(oh, int64(10000+p.rng.Intn(200000)), 16384)
		p.Close(oh)
	}
	p.Close(h)
	sec.Unmap()
	return s.gap.NextDuration(p.rng)
}

// TempChurn produces the §6.3 new-file lifetime population: 81% of new
// files die within seconds — 26% overwritten within ~4 ms of creation
// (75% of overwrites within 0.7 ms of the close), 55% explicitly deleted
// within ~5 s, ~1% via the temporary attribute, with a heavy tail of
// survivors (top 10% live minutes to hours).
type TempChurn struct {
	P   *Proc
	Lay *fsgen.Layout
	gap *dist.OnOff
	seq int
}

// NewTempChurn builds the model.
func NewTempChurn(p *Proc, lay *fsgen.Layout) *TempChurn {
	return &TempChurn{P: p, Lay: lay, gap: dist.NewOnOff(
		dist.NewBoundedPareto(5, 600, 1.3),
		dist.NewBoundedPareto(10, 3600, 1.15),
		dist.NewBoundedPareto(0.5, 60, 1.3),
	)}
}

// AppName implements App.
func (t *TempChurn) AppName() string { return "msoffice" }

// Burst implements App: one scratch-file cycle.
func (t *TempChurn) Burst() sim.Duration {
	p := t.P
	t.seq++
	name := t.Lay.TempDir + fmt.Sprintf(`\wrk%06x.tmp`, t.seq)
	size := int64(dist.NewBoundedPareto(20, 2<<20, 1.3).Sample(p.rng))

	r := p.rng.Float64()
	switch {
	case r < 0.30:
		// Overwrite-after-create: create, write, close, then overwrite —
		// 75% within 0.7 ms of the close, with a heavy tail beyond
		// (§6.3: top 10% live at least a minute, up to 18 hours). The
		// deferred steps are scheduled events, not inline stalls.
		h, st := p.Open(name, types.AccessWrite, types.DispositionCreate, 0, 0)
		if st.IsError() {
			break
		}
		p.WriteChunked(h, size, writeSizes)
		p.Close(h)
		gap := sim.FromMicroseconds(dist.NewBoundedPareto(50, 60e9, 1.25).Sample(p.rng))
		p.M.Sched.After(gap, func(*sim.Scheduler) {
			h2, st2 := p.Open(name, types.AccessWrite, types.DispositionOverwrite, 0, 0)
			if !st2.IsError() {
				p.WriteStream(h2, size/2+1, 4096)
				p.Close(h2)
			}
			p.M.Sched.After(sim.FromMilliseconds(1+float64(p.rng.Intn(50))), func(*sim.Scheduler) {
				p.DeleteFile(name)
			})
		})
	case r < 0.90:
		// Create then explicit delete: "72% of these files are deleted
		// within 4 seconds after they were created", 60% within 1.5 s of
		// the close, with the usual heavy tail.
		h, st := p.Open(name, types.AccessWrite, types.DispositionCreate, 0, 0)
		if st.IsError() {
			break
		}
		p.WriteChunked(h, size, writeSizes)
		p.Close(h)
		reopen := p.rng.Bool(0.18) // 18% of DeleteFile cases reopen in between (§6.3)
		gap := sim.FromMilliseconds(dist.NewBoundedPareto(400, 60e6, 1.3).Sample(p.rng))
		if reopen {
			p.M.Sched.After(gap/2, func(*sim.Scheduler) {
				if h2, st2 := p.Open(name, types.AccessRead, types.DispositionOpen, 0, 0); !st2.IsError() {
					p.ReadWhole(h2, 4096)
					p.Close(h2)
				}
			})
		}
		p.M.Sched.After(gap, func(*sim.Scheduler) { p.DeleteFile(name) })
	case r < 0.92:
		// The rarely used temporary-file attribute (~1–2% of deletions).
		h, st := p.Open(name, types.AccessWrite, types.DispositionCreate,
			types.OptDeleteOnClose, types.AttrTemporary)
		if st.IsError() {
			break
		}
		p.WriteChunked(h, size, writeSizes)
		hold := sim.FromMilliseconds(1 + float64(p.rng.Intn(2000)))
		p.M.Sched.After(hold, func(*sim.Scheduler) { p.Close(h) })
	default:
		// A survivor: created and left alone (cleaned later or never).
		h, st := p.Open(name, types.AccessWrite, types.DispositionCreate, 0, 0)
		if !st.IsError() {
			p.WriteStream(h, size, 4096)
			p.Close(h)
		}
	}
	return t.gap.NextDuration(p.rng)
}

// ShareUser models the network-file-server traffic: users were encouraged
// to keep their files on the central servers (§2), so documents are read
// and written over the CIFS redirector. It supplies the "network file
// server" series of Figure 5 and the remote half of Table 2.
type ShareUser struct {
	P   *Proc // Drive is the share prefix (e.g. `\\fs\alice`)
	Lay *fsgen.Layout
	gap *dist.OnOff
	seq int
}

// NewShareUser builds the model over the share layout.
func NewShareUser(p *Proc, lay *fsgen.Layout) *ShareUser {
	return &ShareUser{P: p, Lay: lay, gap: dist.NewOnOff(
		dist.NewBoundedPareto(20, 1800, 1.3),
		dist.NewBoundedPareto(60, 14400, 1.15),
		dist.NewBoundedPareto(2, 300, 1.3),
	)}
}

// AppName implements App.
func (s *ShareUser) AppName() string { return "shareuser" }

// Burst implements App: one document interaction against the server.
func (s *ShareUser) Burst() sim.Duration {
	p := s.P
	doc := pick(p.rng, s.Lay.Documents)
	if doc == "" {
		return sim.Hour
	}
	switch p.rng.Intn(4) {
	case 0, 1:
		// Read a document.
		if h, st := p.Open(doc, types.AccessRead, types.DispositionOpen, 0, 0); !st.IsError() {
			p.ReadWhole(h, 4096)
			p.Close(h)
		}
	case 2:
		// Edit-and-save.
		size, _ := p.StatFile(doc)
		if size <= 0 {
			size = 4000
		}
		if h, st := p.Open(doc, types.AccessWrite, types.DispositionOverwriteIf, 0, 0); !st.IsError() {
			p.WriteChunked(h, size, writeSizes)
			p.Close(h)
		}
	default:
		// Store a new file on the share (§5: "peaks occurring when the
		// user ... retrieves a large set of files from an archive").
		s.seq++
		name := s.Lay.DocsDir + fmt.Sprintf(`\saved%05d.doc`, s.seq)
		if h, st := p.Open(name, types.AccessWrite, types.DispositionCreate, 0, 0); !st.IsError() {
			p.WriteStream(h, int64(2000+p.rng.Intn(60000)), 4096)
			p.Close(h)
		}
	}
	return s.gap.NextDuration(p.rng)
}

// DirPoller models the §7 "directory poll operations ... controlled
// through loops in the applications": services and shell components that
// re-enumerate directories and re-validate names on timers, independent of
// user activity. With Explorer it supplies the control-operation dominance
// of §8.3 (74% of opens perform control or directory operations).
type DirPoller struct {
	P    *Proc
	Lay  *fsgen.Layout
	Dirs []string
	gap  *dist.OnOff
}

// NewDirPoller builds the model.
func NewDirPoller(p *Proc, lay *fsgen.Layout) *DirPoller {
	dirs := []string{lay.TempDir, lay.Profile, lay.SystemDir}
	if lay.DevDir != "" {
		dirs = append(dirs, lay.DevDir)
	}
	return &DirPoller{P: p, Lay: lay, Dirs: dirs, gap: dist.NewOnOff(
		dist.NewBoundedPareto(30, 3600, 1.2), // polling phases
		dist.NewBoundedPareto(10, 1800, 1.2), // quiet
		dist.NewBoundedPareto(0.5, 20, 1.3),  // between polls
	)}
}

// AppName implements App.
func (dp *DirPoller) AppName() string { return "spoolsv" }

// Burst implements App: one poll round — name validation FSCTLs, a
// directory enumeration, and a few attribute probes.
func (dp *DirPoller) Burst() sim.Duration {
	p := dp.P
	dir := pick(p.rng, dp.Dirs)
	if vh, st := p.Open(`\`, types.AccessAttributes, types.DispositionOpen,
		types.OptDirectoryFile, 0); !st.IsError() {
		p.M.IO.FsControl(p.PID, vh, types.FsctlIsVolumeMounted)
		p.Close(vh)
	}
	if h, st := p.Open(dir, types.AccessRead, types.DispositionOpen,
		types.OptDirectoryFile, 0); !st.IsError() {
		p.M.IO.QueryDirectory(p.PID, h)
		p.Close(h)
	}
	// Poll a watch file that usually does not exist, plus a config stat.
	p.Open(dir+`\trigger.flg`, types.AccessRead, types.DispositionOpen, 0, 0)
	if f := pick(p.rng, dp.Lay.Documents); f != "" && p.rng.Bool(0.6) {
		p.StatFile(f)
	}
	return dp.gap.NextDuration(p.rng)
}

// LaunchApp models a process launch: the loader opens the executable and
// its import-table DLLs through the VM manager's image sections — the
// §3.3 executable traffic that dominates transferred bytes in the traces.
func LaunchApp(p *Proc, lay *fsgen.Layout, vm *vmmgr.Manager, popular *dist.Zipf) {
	exe := zipfPick(popular, p.rng, lay.Executables)
	if exe == "" {
		return
	}
	// A loader search-path miss or two (§8.4's not-found population).
	p.Open(exe+`.local`, types.AccessRead, types.DispositionOpen, 0, 0)
	vm.LoadImage(p.PID, p.path(exe))
	n := 2 + p.rng.Intn(6)
	for i := 0; i < n; i++ {
		if dll := zipfPick(popular, p.rng, lay.Libraries); dll != "" {
			vm.LoadImage(p.PID, p.path(dll))
		}
	}
}

// AppLauncher fires process launches on user-ish and service-ish timers.
type AppLauncher struct {
	P   *Proc
	Lay *fsgen.Layout
	pop *dist.Zipf
	gap *dist.OnOff
}

// NewAppLauncher builds the model.
func NewAppLauncher(p *Proc, lay *fsgen.Layout) *AppLauncher {
	return &AppLauncher{P: p, Lay: lay,
		pop: dist.NewZipf(48, 1.0),
		gap: dist.NewOnOff(
			dist.NewBoundedPareto(10, 600, 1.3),
			dist.NewBoundedPareto(60, 10800, 1.15),
			dist.NewBoundedPareto(2, 120, 1.3),
		)}
}

// AppName implements App.
func (a *AppLauncher) AppName() string { return "launcher" }

// Burst implements App: one process launch.
func (a *AppLauncher) Burst() sim.Duration {
	LaunchApp(a.P, a.Lay, a.P.M.VM, a.pop)
	return a.gap.NextDuration(a.P.rng)
}

// AppendLog models the pervasive small-append writers (application logs,
// status files): the file stays open across a burst and receives many
// sub-page writes that the lazy writer later coalesces into few 64 KB
// flushes — the traffic mix behind the paper's 96% FastIO write share.
type AppendLog struct {
	P    *Proc
	Lay  *fsgen.Layout
	h    iomgr.Handle
	ok   bool
	gap  *dist.OnOff
	name string
}

// NewAppendLog builds the model.
func NewAppendLog(p *Proc, lay *fsgen.Layout) *AppendLog {
	return &AppendLog{P: p, Lay: lay,
		name: lay.Profile + `\Application Data\events.log`,
		gap: dist.NewOnOff(
			dist.NewBoundedPareto(20, 1800, 1.25),
			dist.NewBoundedPareto(10, 1200, 1.2),
			dist.NewBoundedPareto(0.5, 60, 1.3),
		)}
}

// AppName implements App.
func (a *AppendLog) AppName() string { return "services" }

// Burst implements App: append a handful of records.
func (a *AppendLog) Burst() sim.Duration {
	p := a.P
	if !a.ok {
		h, st := p.Open(a.name, types.AccessWrite, types.DispositionOpenIf, 0, 0)
		if st.IsError() {
			return sim.Minute
		}
		a.h = h
		a.ok = true
		// Position at the end once; appends then ride the file pointer.
		size, _ := p.M.IO.QueryInformation(p.PID, a.h)
		p.WriteAt(a.h, size, int(writeSizes.Sample(p.rng)))
	}
	n := 3 + p.rng.Intn(10)
	for i := 0; i < n; i++ {
		if _, st := p.Write(a.h, int(writeSizes.Sample(p.rng))); st.IsError() {
			a.ok = false
			return a.gap.NextDuration(p.rng)
		}
		p.think(p.writeGap)
	}
	// Rotate occasionally so the log does not grow without bound.
	if size, _ := p.M.IO.QueryInformation(p.PID, a.h); size > 4<<20 {
		p.M.IO.SetEndOfFile(p.PID, a.h, 0)
	}
	return a.gap.NextDuration(p.rng)
}
