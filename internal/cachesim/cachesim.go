// Package cachesim replays the read-request stream extracted from a
// collected trace against alternative file-cache configurations — the
// downstream use the paper built its collection for ("could be used as
// input for file system simulation studies", §1), and the setting its §7
// warning targets: cache sizing from mean-based models fails under
// heavy-tailed request streams.
//
// The simulator consumes page-granular read accesses (path, page) in
// trace order and reports hit ratios for classic replacement policies at
// a sweep of cache sizes.
package cachesim

import (
	"container/list"
	"fmt"

	"repro/internal/analysis"
	"repro/internal/tracefmt"
)

// PageSize matches the NT page size.
const PageSize = 4096

// Access is one page touch.
type Access struct {
	Path string
	Page int64
}

// key identifies a cached page.
type key struct {
	path string
	page int64
}

// ExtractReads converts a machine trace into the page-access stream: all
// application-level reads (IRP and FastIO), page-expanded. Cache-manager
// paging records are excluded — they are effects of the original cache,
// not demand.
func ExtractReads(mt *analysis.MachineTrace) []Access {
	var out []Access
	recs := mt.Rows()
	for _, i := range mt.Index().Select(tracefmt.EvRead, tracefmt.EvFastRead) {
		r := &recs[i]
		if r.Annot&tracefmt.AnnotFastRefused != 0 || r.Status.IsError() || r.Returned <= 0 {
			continue
		}
		path := mt.PathOf(r.FileID)
		if path == "" {
			continue
		}
		off := r.BytePos - int64(r.Returned)
		first := off / PageSize
		last := (r.BytePos - 1) / PageSize
		for p := first; p <= last; p++ {
			out = append(out, Access{Path: path, Page: p})
		}
	}
	return out
}

// Policy is a page-cache replacement policy.
type Policy interface {
	// PolicyName identifies the policy in reports.
	PolicyName() string
	// Touch records an access, returning whether it hit. The policy must
	// respect its capacity.
	Touch(k key) bool
	// Len reports resident pages.
	Len() int
}

// --- LRU --------------------------------------------------------------------

type lru struct {
	cap   int
	list  *list.List
	index map[key]*list.Element
}

// NewLRU returns a least-recently-used policy with the given page
// capacity.
func NewLRU(capacity int) Policy {
	return &lru{cap: capacity, list: list.New(), index: map[key]*list.Element{}}
}

func (c *lru) PolicyName() string { return "LRU" }
func (c *lru) Len() int           { return c.list.Len() }

func (c *lru) Touch(k key) bool {
	if e, ok := c.index[k]; ok {
		c.list.MoveToFront(e)
		return true
	}
	c.index[k] = c.list.PushFront(k)
	if c.list.Len() > c.cap {
		back := c.list.Back()
		c.list.Remove(back)
		delete(c.index, back.Value.(key))
	}
	return false
}

// --- FIFO -------------------------------------------------------------------

type fifo struct {
	cap   int
	list  *list.List
	index map[key]*list.Element
}

// NewFIFO returns a first-in-first-out policy.
func NewFIFO(capacity int) Policy {
	return &fifo{cap: capacity, list: list.New(), index: map[key]*list.Element{}}
}

func (c *fifo) PolicyName() string { return "FIFO" }
func (c *fifo) Len() int           { return c.list.Len() }

func (c *fifo) Touch(k key) bool {
	if _, ok := c.index[k]; ok {
		return true
	}
	c.index[k] = c.list.PushFront(k)
	if c.list.Len() > c.cap {
		back := c.list.Back()
		c.list.Remove(back)
		delete(c.index, back.Value.(key))
	}
	return false
}

// --- 2Q (simplified Johnson/Shasha) ------------------------------------------

type twoQ struct {
	cap   int
	a1cap int
	a1    *list.List // probation FIFO
	am    *list.List // protected LRU
	a1idx map[key]*list.Element
	amidx map[key]*list.Element
}

// New2Q returns a simplified 2Q policy: a probationary FIFO (A1, 25% of
// capacity) in front of a protected LRU (Am); pages hit in A1 promote to
// Am. 2Q resists the single-touch sequential scans that flush plain LRU
// — exactly the heavy-tailed whole-file reads of the traces.
func New2Q(capacity int) Policy {
	a1 := capacity / 4
	if a1 < 1 {
		a1 = 1
	}
	return &twoQ{
		cap: capacity, a1cap: a1,
		a1: list.New(), am: list.New(),
		a1idx: map[key]*list.Element{}, amidx: map[key]*list.Element{},
	}
}

func (c *twoQ) PolicyName() string { return "2Q" }
func (c *twoQ) Len() int           { return c.a1.Len() + c.am.Len() }

func (c *twoQ) Touch(k key) bool {
	if e, ok := c.amidx[k]; ok {
		c.am.MoveToFront(e)
		return true
	}
	if e, ok := c.a1idx[k]; ok {
		// Promote to the protected queue.
		c.a1.Remove(e)
		delete(c.a1idx, k)
		c.amidx[k] = c.am.PushFront(k)
		c.evict()
		return true
	}
	c.a1idx[k] = c.a1.PushFront(k)
	c.evict()
	return false
}

func (c *twoQ) evict() {
	for c.a1.Len() > c.a1cap {
		back := c.a1.Back()
		c.a1.Remove(back)
		delete(c.a1idx, back.Value.(key))
	}
	for c.a1.Len()+c.am.Len() > c.cap && c.am.Len() > 0 {
		back := c.am.Back()
		c.am.Remove(back)
		delete(c.amidx, back.Value.(key))
	}
}

// --- Simulation --------------------------------------------------------------

// Result is one (policy, size) cell.
type Result struct {
	Policy   string
	CacheMB  float64
	Accesses int
	Hits     int
	HitRatio float64
	Resident int
}

// Run replays accesses against a freshly built policy.
func Run(accesses []Access, build func(capacityPages int) Policy, capacityPages int) Result {
	p := build(capacityPages)
	hits := 0
	for _, a := range accesses {
		if p.Touch(key{a.Path, a.Page}) {
			hits++
		}
	}
	r := Result{
		Policy:   p.PolicyName(),
		CacheMB:  float64(capacityPages) * PageSize / (1 << 20),
		Accesses: len(accesses),
		Hits:     hits,
		Resident: p.Len(),
	}
	if r.Accesses > 0 {
		r.HitRatio = float64(hits) / float64(r.Accesses)
	}
	return r
}

// Sweep runs every policy across a geometric size sweep.
func Sweep(accesses []Access, sizesMB []float64) []Result {
	builders := []func(int) Policy{NewLRU, NewFIFO, New2Q}
	var out []Result
	for _, mb := range sizesMB {
		pages := int(mb * (1 << 20) / PageSize)
		if pages < 1 {
			pages = 1
		}
		for _, b := range builders {
			out = append(out, Run(accesses, b, pages))
		}
	}
	return out
}

// Render prints a sweep as a text table.
func Render(results []Result) string {
	s := "Cache policy sweep (trace-driven replay)\n"
	s += fmt.Sprintf("  %-6s %8s %10s %10s\n", "policy", "size", "accesses", "hit ratio")
	for _, r := range results {
		s += fmt.Sprintf("  %-6s %6.1fMB %10d %9.1f%%\n",
			r.Policy, r.CacheMB, r.Accesses, 100*r.HitRatio)
	}
	return s
}
