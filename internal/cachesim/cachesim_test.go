package cachesim

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/ntos/machine"
	"repro/internal/ntos/types"
	"repro/internal/sim"
	"repro/internal/tracefmt"
)

func k(path string, page int64) key { return key{path, page} }

func TestLRUBasics(t *testing.T) {
	c := NewLRU(2)
	if c.Touch(k("a", 0)) {
		t.Error("cold touch hit")
	}
	if !c.Touch(k("a", 0)) {
		t.Error("warm touch missed")
	}
	c.Touch(k("b", 0))
	c.Touch(k("c", 0)) // evicts a (LRU)
	if c.Touch(k("a", 0)) {
		t.Error("evicted page still resident")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestLRURecencyOrdering(t *testing.T) {
	c := NewLRU(2)
	c.Touch(k("a", 0))
	c.Touch(k("b", 0))
	c.Touch(k("a", 0)) // refresh a
	c.Touch(k("c", 0)) // must evict b, not a
	if !c.Touch(k("a", 0)) {
		t.Error("recently used page evicted")
	}
	if c.Touch(k("b", 0)) {
		t.Error("least recently used page survived")
	}
}

func TestFIFOIgnoresRecency(t *testing.T) {
	c := NewFIFO(2)
	c.Touch(k("a", 0))
	c.Touch(k("b", 0))
	c.Touch(k("a", 0)) // hit but no reordering
	c.Touch(k("c", 0)) // evicts a (first in)
	if c.Touch(k("a", 0)) {
		t.Error("FIFO kept the oldest page")
	}
}

func Test2QScanResistance(t *testing.T) {
	// A working set of hot pages plus a long single-touch scan: 2Q must
	// retain the hot set better than LRU at equal capacity.
	hot := make([]Access, 0)
	for i := 0; i < 8; i++ {
		hot = append(hot, Access{Path: "hot", Page: int64(i)})
	}
	var trace []Access
	for round := 0; round < 50; round++ {
		trace = append(trace, hot...)
		// Warm the hot set twice so 2Q promotes it.
		trace = append(trace, hot...)
		for j := 0; j < 64; j++ {
			trace = append(trace, Access{Path: fmt.Sprintf("scan%d", round), Page: int64(j)})
		}
	}
	lruRes := Run(trace, NewLRU, 32)
	twoQRes := Run(trace, New2Q, 32)
	if twoQRes.HitRatio <= lruRes.HitRatio {
		t.Errorf("2Q (%.3f) not better than LRU (%.3f) under scan flood",
			twoQRes.HitRatio, lruRes.HitRatio)
	}
}

func TestCapacityRespected(t *testing.T) {
	for _, build := range []func(int) Policy{NewLRU, NewFIFO, New2Q} {
		p := build(10)
		for i := 0; i < 1000; i++ {
			p.Touch(k("f", int64(i)))
		}
		if p.Len() > 10 {
			t.Errorf("%s exceeded capacity: %d", p.PolicyName(), p.Len())
		}
	}
}

func TestExtractReadsPageExpansion(t *testing.T) {
	var recs []tracefmt.Record
	nm := tracefmt.Record{Kind: tracefmt.EvNameMap, FileID: 1}
	nm.SetName(`C:\f`)
	recs = append(recs, nm)
	// 10000-byte read at offset 0: pages 0..2.
	recs = append(recs, tracefmt.Record{Kind: tracefmt.EvRead, FileID: 1,
		Returned: 10000, BytePos: 10000, Start: 1, End: 2})
	// Refused FastIO and failed reads are excluded.
	recs = append(recs, tracefmt.Record{Kind: tracefmt.EvFastRead, FileID: 1,
		Annot: tracefmt.AnnotFastRefused, Returned: 4096, BytePos: 4096})
	recs = append(recs, tracefmt.Record{Kind: tracefmt.EvRead, FileID: 1,
		Status: types.StatusEndOfFile})
	// Cache-manager paging excluded.
	pg := tracefmt.Record{Kind: tracefmt.EvPagingRead,
		FileID: tracefmt.PagingObjectIDBase + 1, Length: 4096}
	recs = append(recs, pg)
	mt := analysis.NewMachineTrace("m", machine.Personal, recs)
	acc := ExtractReads(mt)
	if len(acc) != 3 {
		t.Fatalf("accesses = %d, want 3 pages", len(acc))
	}
	for i, a := range acc {
		if a.Path != `C:\f` || a.Page != int64(i) {
			t.Errorf("access %d = %+v", i, a)
		}
	}
}

func TestSweepShapes(t *testing.T) {
	// Zipf-ish synthetic stream: popular pages rewarded by larger caches.
	rng := sim.NewRNG(9)
	var trace []Access
	for i := 0; i < 20000; i++ {
		trace = append(trace, Access{Path: "data", Page: rng.Int63n(1 + rng.Int63n(2000))})
	}
	results := Sweep(trace, []float64{0.5, 2, 8})
	if len(results) != 9 {
		t.Fatalf("results = %d", len(results))
	}
	// Hit ratio must not decrease with cache size for LRU.
	var lruRatios []float64
	for _, r := range results {
		if r.Policy == "LRU" {
			lruRatios = append(lruRatios, r.HitRatio)
		}
	}
	for i := 1; i < len(lruRatios); i++ {
		if lruRatios[i] < lruRatios[i-1]-1e-9 {
			t.Errorf("LRU hit ratio decreased with size: %v", lruRatios)
		}
	}
	out := Render(results)
	if !strings.Contains(out, "LRU") || !strings.Contains(out, "2Q") {
		t.Error("render missing policies")
	}
}
