package query

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"time"

	"repro/internal/sim"
)

// LoadConfig tunes the built-in load generator (fsqueryd -load).
type LoadConfig struct {
	Clients  int           // concurrent request loops (default 16)
	Requests int           // requests per client (default 200)
	Seed     uint64        // query mix seed (default 1)
	Timeout  time.Duration // per-request client timeout (default 10s)
}

// LoadStats summarizes one load run.
type LoadStats struct {
	Sent     int
	OK       int           // 200
	Rejected int           // 429 — the backpressure path working as designed
	Errors   int           // transport errors and other statuses
	Wall     time.Duration // end-to-end run time
}

func (s LoadStats) String() string {
	return fmt.Sprintf("load: sent=%d ok=%d rejected=%d errors=%d wall=%s",
		s.Sent, s.OK, s.Rejected, s.Errors, s.Wall.Round(time.Millisecond))
}

// RunLoad drives a randomized but seed-deterministic query mix — scans
// across kinds/windows/limits, report artifacts, machine listings —
// against a running service. It exists to exercise the admission pool:
// point enough clients at a small MaxInflight and the 429 path fires.
func RunLoad(ctx context.Context, baseURL string, machines []string, cfg LoadConfig) LoadStats {
	if cfg.Clients <= 0 {
		cfg.Clients = 16
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 200
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}

	kindMixes := []string{"", "Read", "Read,Write", "Create,Close", "3"}
	artifacts := []string{"table1", "table2", "figure2", "figure5", "section8", "process"}

	client := &http.Client{Timeout: cfg.Timeout}
	var mu sync.Mutex
	stats := LoadStats{}
	start := time.Now()

	var wg sync.WaitGroup
	for _, rng := range sim.NewRNG(cfg.Seed).Split(cfg.Clients) {
		wg.Add(1)
		go func(rng *sim.RNG) {
			defer wg.Done()
			local := LoadStats{}
			for i := 0; i < cfg.Requests; i++ {
				if ctx.Err() != nil {
					break
				}
				url := baseURL + nextQuery(rng, machines, kindMixes, artifacts)
				local.Sent++
				resp, err := client.Get(url)
				if err != nil {
					local.Errors++
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					local.OK++
				case http.StatusTooManyRequests:
					local.Rejected++
				default:
					local.Errors++
				}
			}
			mu.Lock()
			stats.Sent += local.Sent
			stats.OK += local.OK
			stats.Rejected += local.Rejected
			stats.Errors += local.Errors
			mu.Unlock()
		}(rng)
	}
	wg.Wait()
	stats.Wall = time.Since(start)
	return stats
}

// nextQuery picks one request from the mix: mostly scans (the cheap,
// cacheable hot path), some report artifacts (the expensive path), a
// few machine listings.
func nextQuery(rng *sim.RNG, machines, kindMixes, artifacts []string) string {
	switch {
	case rng.Bool(0.70):
		q := "/v1/scan?limit=" + fmt.Sprint(10+rng.Intn(40))
		if kinds := kindMixes[rng.Intn(len(kindMixes))]; kinds != "" {
			q += "&kinds=" + kinds
		}
		if rng.Bool(0.5) {
			q += fmt.Sprintf("&min_h=%d&max_h=%d", rng.Intn(2), 2+rng.Intn(8))
		}
		if len(machines) > 0 && rng.Bool(0.3) {
			q += "&machine=" + url.QueryEscape(machines[rng.Intn(len(machines))])
		}
		return q
	case rng.Bool(0.5):
		return "/v1/report?artifact=" + artifacts[rng.Intn(len(artifacts))]
	default:
		return "/v1/machines"
	}
}
