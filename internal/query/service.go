package query

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/colstore"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/report"
)

// Config tunes a Service. Zero values select the defaults noted per
// field.
type Config struct {
	Workers     int           // scan/report fan-out width (default GOMAXPROCS via report)
	CacheBytes  int64         // result-cache bound (default 64 MiB)
	MaxInflight int           // admission slots actually executing (default 8)
	MaxQueue    int           // requests allowed to wait for a slot (default 32)
	Timeout     time.Duration // per-request deadline (default 30s)
	Obs         *obs.Registry // nil ok: metrics become no-ops
	// Tracer, when set, records one span tree per admitted request —
	// admission wait, cache probe, per-machine scans, merge, encode —
	// returns the trace ID in X-Trace-Id, and links the latency
	// histograms to the flight recorder via exemplars. Nil disables all
	// of it at the cost of one predictable branch.
	Tracer *trace.Tracer
	// SlowMS, when positive, logs one structured line (via Logf) for any
	// request whose wall time exceeds this many milliseconds. The stage
	// breakdown is a view over the request's spans — there is no second
	// timing path — so it needs Tracer to be set.
	SlowMS int64
	Logf   func(format string, args ...any) // default log.Printf
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 8
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 32
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	return c
}

// Service answers corpus queries over HTTP. Every data endpoint runs
// under a bounded admission pool — MaxInflight requests execute, up to
// MaxQueue more wait, the rest are refused with 429 + Retry-After — and
// a per-request deadline. Results flow through the LRU body cache, so a
// repeated query is a key lookup plus a verbatim write of the bytes the
// cold path rendered.
type Service struct {
	corpus *Corpus
	cache  *Cache
	cfg    Config

	slots   chan struct{} // admission pool: one token per executing request
	pending atomic.Int64  // executing + queued, for the 429 bound

	resOnce sync.Once // report.Results is computed at most once per process
	res     *report.Results
	resErr  error

	requests  map[string]*obs.Counter   // per endpoint
	latency   map[string]*obs.Histogram // per endpoint, wall microseconds
	inflight  *obs.Gauge
	rejected  *obs.Counter
	timeouts  *obs.Counter
	scanRows  *obs.Counter
	draining  atomic.Bool
	wg        sync.WaitGroup // live requests, for graceful drain
	startedAt time.Time

	tracer *trace.Tracer
	seq    atomic.Uint64 // admitted-request sequence, mixed into trace IDs
}

// endpoints enumerated for per-endpoint instrumentation.
var endpoints = []string{"machines", "scan", "report", "stats"}

// NewService wraps an opened corpus in a query service.
func NewService(c *Corpus, cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		corpus:    c,
		cache:     NewCache(cfg.CacheBytes, cfg.Obs),
		cfg:       cfg,
		slots:     make(chan struct{}, cfg.MaxInflight),
		requests:  map[string]*obs.Counter{},
		latency:   map[string]*obs.Histogram{},
		startedAt: time.Now(),
	}
	reg := cfg.Obs
	s.tracer = cfg.Tracer
	for _, ep := range endpoints {
		s.requests[ep] = reg.Counter("query_requests_total",
			"query requests accepted, by endpoint", obs.Label{Key: "endpoint", Value: ep})
		s.latency[ep] = reg.Histogram("query_request_wall_us",
			"wall-clock request latency in microseconds, by endpoint",
			obs.Label{Key: "endpoint", Value: ep})
		if s.tracer != nil {
			// Link each latency bucket's worst request to its trace.
			s.latency[ep].EnableExemplars()
		}
	}
	s.inflight = reg.Gauge("query_inflight",
		"query requests currently admitted (executing or queued)")
	s.rejected = reg.Counter("query_rejected_total",
		"query requests refused with 429 because the admission queue was full")
	s.timeouts = reg.Counter("query_timeouts_total",
		"query requests that hit their per-request deadline")
	s.scanRows = reg.Counter("query_scan_rows_total",
		"rows returned by cold /v1/scan executions")
	return s
}

// Handler mounts the query API. The caller composes it with the obs
// /metrics handler on one mux.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/machines", s.admitted("machines", s.handleMachines))
	mux.HandleFunc("/v1/scan", s.admitted("scan", s.handleScan))
	mux.HandleFunc("/v1/report", s.admitted("report", s.handleReport))
	mux.HandleFunc("/v1/stats", s.admitted("stats", s.handleStats))
	return mux
}

// Drain stops admitting new work and waits for live requests, bounded
// by ctx. It returns nil once the last admitted request finished.
func (s *Service) Drain(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Cache exposes the result cache (tests and the stats endpoint).
func (s *Service) Cache() *Cache { return s.cache }

// Corpus exposes the served corpus.
func (s *Service) Corpus() *Corpus { return s.corpus }

type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	body, _ := json.Marshal(apiError{Error: msg})
	writeJSON(w, status, append(body, '\n'))
}

// admitted wraps a handler in the admission pool, deadline, and
// instrumentation. The 429 path answers before consuming a slot: a
// saturated service stays cheap to refuse — and untraced, so a refusal
// storm cannot churn the flight recorder.
func (s *Service) admitted(name string, h func(ctx context.Context, w http.ResponseWriter, r *http.Request, sp *trace.Span)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, "draining")
			return
		}
		limit := int64(s.cfg.MaxInflight + s.cfg.MaxQueue)
		if s.pending.Add(1) > limit {
			s.pending.Add(-1)
			s.rejected.Inc()
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "admission queue full")
			return
		}
		s.wg.Add(1)
		s.inflight.Add(1)
		defer func() {
			s.inflight.Add(-1)
			s.pending.Add(-1)
			s.wg.Done()
		}()

		// The trace identity is content-derived — corpus, endpoint, raw
		// query — plus the admission sequence number, so an identical
		// request sequence reproduces identical trace IDs run after run.
		root := s.tracer.StartTrace(name, r.Method+" "+r.URL.Path, trace.MixID(
			trace.HashID(s.corpus.SHAHex(), name, r.URL.RawQuery), s.seq.Add(1)), nil)
		if tid := root.TraceID(); tid != 0 {
			w.Header().Set("X-Trace-Id", tid.String())
		}
		reqStart := time.Now()

		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
		defer cancel()
		admit := root.Child("admit")
		select {
		case s.slots <- struct{}{}:
			admit.Finish()
			defer func() { <-s.slots }()
		case <-ctx.Done():
			admit.Annotate("outcome", "timeout")
			admit.Finish()
			root.Finish()
			s.timeouts.Inc()
			writeError(w, http.StatusGatewayTimeout, "timed out waiting for an execution slot")
			return
		}

		start := time.Now()
		s.requests[name].Inc()
		h(ctx, w, r.WithContext(ctx), root)
		s.latency[name].ObserveWallExemplar(time.Since(start), uint64(root.TraceID()))
		root.Finish()
		s.maybeLogSlow(name, r, root, time.Since(reqStart))
	}
}

// maybeLogSlow emits the slow-query line: one structured entry whose
// stage breakdown is read back out of the request's own spans, so the
// log and the flight recorder can never disagree.
func (s *Service) maybeLogSlow(name string, r *http.Request, root *trace.Span, wall time.Duration) {
	if s.cfg.SlowMS <= 0 || wall.Milliseconds() < s.cfg.SlowMS {
		return
	}
	tid := root.TraceID()
	snap, ok := s.tracer.Find(tid)
	if !ok {
		return
	}
	// Aggregate sibling spans by stage (the first token of the span
	// name, so "scan m017" folds into "scan"), keeping order of first
	// appearance for a stable, readable breakdown.
	type agg struct {
		n     int
		total int64
		max   int64
	}
	var order []string
	stages := map[string]*agg{}
	cache := "-"
	for _, sp := range snap.Spans {
		if sp.SpanID == tid { // root carries request-level annotations
			if v := sp.Attr("cache"); v != "" {
				cache = v
			}
			continue
		}
		stage, _, _ := strings.Cut(sp.Name, " ")
		a := stages[stage]
		if a == nil {
			a = &agg{}
			stages[stage] = a
			order = append(order, stage)
		}
		a.n++
		a.total += sp.Duration()
		if sp.Duration() > a.max {
			a.max = sp.Duration()
		}
	}
	var b strings.Builder
	for i, stage := range order {
		if i > 0 {
			b.WriteByte(' ')
		}
		a := stages[stage]
		fmt.Fprintf(&b, "%s=%.1fms", stage, float64(a.total)/1e6)
		if a.n > 1 {
			fmt.Fprintf(&b, "/%d(max=%.1fms)", a.n, float64(a.max)/1e6)
		}
	}
	s.cfg.Logf("slow query method=%s endpoint=%s wall_ms=%d cache=%s trace=%s stages=[%s]",
		r.Method, name, wall.Milliseconds(), cache, tid, b.String())
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	writeJSON(w, http.StatusOK, []byte("{\"status\":\"ok\"}\n"))
}

// machinesBody is the /v1/machines response.
type machinesBody struct {
	Corpus   string        `json:"corpus_sha256"`
	Machines []machineInfo `json:"machines"`
}

type machineInfo struct {
	Name     string `json:"name"`
	Records  int    `json:"records"`
	Columnar bool   `json:"columnar"`
}

func (s *Service) handleMachines(ctx context.Context, w http.ResponseWriter, r *http.Request, sp *trace.Span) {
	key := keyFor(s.corpus.SHA, "machines")
	if body, ok := s.cache.Get(key); ok {
		sp.Annotate("cache", "hit")
		writeJSON(w, http.StatusOK, body)
		return
	}
	sp.Annotate("cache", "miss")
	out := machinesBody{Corpus: s.corpus.SHAHex()}
	for _, m := range s.corpus.Machines() {
		out.Machines = append(out.Machines, machineInfo{
			Name:     m,
			Records:  s.corpus.Records(m),
			Columnar: s.corpus.Columnar(m),
		})
	}
	body, err := json.Marshal(out)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	body = append(body, '\n')
	s.cache.Put(key, body)
	writeJSON(w, http.StatusOK, body)
}

// scanBody is the /v1/scan response: per-machine row sets in sorted
// machine order, each a column-major projection of the matched rows.
type scanBody struct {
	Corpus   string        `json:"corpus_sha256"`
	Query    string        `json:"query"`
	Matched  int           `json:"matched"`
	Returned int           `json:"returned"`
	Machines []machineScan `json:"machines"`
}

type machineScan struct {
	Name      string               `json:"name"`
	Matched   int                  `json:"matched"`
	Truncated bool                 `json:"truncated,omitempty"`
	Columns   map[string][]float64 `json:"columns,omitempty"`
	Kinds     []string             `json:"kinds,omitempty"`
}

func (s *Service) handleScan(ctx context.Context, w http.ResponseWriter, r *http.Request, sp *trace.Span) {
	q, err := parseScanQuery(s.corpus, r.URL.Query())
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	canon := q.canonical()
	key := keyFor(s.corpus.SHA, canon)
	probe := sp.Child("cache")
	body, hit := s.cache.Get(key)
	if hit {
		probe.Annotate("result", "hit")
		probe.Finish()
		sp.Annotate("cache", "hit")
		writeJSON(w, http.StatusOK, body)
		return
	}
	probe.Annotate("result", "miss")
	probe.Finish()
	sp.Annotate("cache", "miss")

	scans, err := s.runScan(ctx, q, sp)
	if err != nil {
		if ctx.Err() != nil {
			s.timeouts.Inc()
			writeError(w, http.StatusGatewayTimeout, "scan exceeded the request deadline")
			return
		}
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}

	merge := sp.Child("merge")
	out := scanBody{Corpus: s.corpus.SHAHex(), Query: canon, Machines: scans}
	for i := range scans {
		out.Matched += scans[i].Matched
		n := scans[i].Matched
		if q.limit > 0 && n > q.limit {
			n = q.limit
		}
		out.Returned += n
	}
	s.scanRows.Add(uint64(out.Returned))
	merge.AnnotateInt("rows", int64(out.Returned))
	merge.Finish()

	encode := sp.Child("encode")
	body, err = json.Marshal(out)
	if err != nil {
		encode.Finish()
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	body = append(body, '\n')
	encode.AnnotateInt("bytes", int64(len(body)))
	encode.Finish()
	s.cache.Put(key, body)
	writeJSON(w, http.StatusOK, body)
}

// runScan fans the machine list across cfg.Workers goroutines. Results
// land in slot-indexed entries of a pre-sized slice, so assembly order
// equals the sorted machine order regardless of completion order or
// worker count.
func (s *Service) runScan(ctx context.Context, q *scanQuery, sp *trace.Span) ([]machineScan, error) {
	out := make([]machineScan, len(q.machines))
	errs := make([]error, len(q.machines))
	var next atomic.Int64
	var wg sync.WaitGroup
	workers := s.cfg.Workers
	if workers > len(q.machines) {
		workers = len(q.machines)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(q.machines) {
					return
				}
				if ctx.Err() != nil {
					errs[i] = ctx.Err()
					continue
				}
				name := q.machines[i]
				msp := sp.Child("scan " + name)
				batch, st, err := s.corpus.ScanMachine(name, q.pred, q.cols)
				if err != nil {
					msp.Annotate("error", err.Error())
					msp.Finish()
					errs[i] = err
					continue
				}
				msp.AnnotateInt("blocks_scanned", int64(st.BlocksScanned))
				msp.AnnotateInt("blocks_skipped", int64(st.BlocksSkipped))
				msp.AnnotateInt("rows", int64(batch.N))
				msp.Finish()
				out[i] = renderScan(name, batch, q)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// renderScan projects one machine's batch into the response shape,
// applying the per-machine row limit.
func renderScan(name string, b *colstore.Batch, q *scanQuery) machineScan {
	ms := machineScan{Name: name, Matched: b.N}
	n := b.N
	if q.limit > 0 && n > q.limit {
		n = q.limit
		ms.Truncated = true
	}
	numeric := func(label string, vals []float64) {
		if ms.Columns == nil {
			ms.Columns = map[string][]float64{}
		}
		ms.Columns[label] = vals
	}
	if q.cols&colstore.ScanKind != 0 {
		ms.Kinds = make([]string, n)
		for i := 0; i < n; i++ {
			ms.Kinds[i] = b.Kinds[i].String()
		}
	}
	if q.cols&colstore.ScanStart != 0 {
		vals := make([]float64, n)
		for i := 0; i < n; i++ {
			vals[i] = float64(b.Starts[i])
		}
		numeric("start", vals)
	}
	if q.cols&colstore.ScanEnd != 0 {
		vals := make([]float64, n)
		for i := 0; i < n; i++ {
			vals[i] = float64(b.Ends[i])
		}
		numeric("end", vals)
	}
	if q.cols&colstore.ScanOffset != 0 {
		vals := make([]float64, n)
		for i := 0; i < n; i++ {
			vals[i] = float64(b.Offsets[i])
		}
		numeric("offset", vals)
	}
	if q.cols&colstore.ScanLength != 0 {
		vals := make([]float64, n)
		for i := 0; i < n; i++ {
			vals[i] = float64(b.Lengths[i])
		}
		numeric("length", vals)
	}
	if q.cols&colstore.ScanReturned != 0 {
		vals := make([]float64, n)
		for i := 0; i < n; i++ {
			vals[i] = float64(b.Returns[i])
		}
		numeric("returned", vals)
	}
	if q.cols&colstore.ScanFileSize != 0 {
		vals := make([]float64, n)
		for i := 0; i < n; i++ {
			vals[i] = float64(b.FileSizes[i])
		}
		numeric("filesize", vals)
	}
	if q.cols&colstore.ScanProc != 0 {
		vals := make([]float64, n)
		for i := 0; i < n; i++ {
			vals[i] = float64(b.Procs[i])
		}
		numeric("proc", vals)
	}
	if q.cols&colstore.ScanFileID != 0 {
		vals := make([]float64, n)
		for i := 0; i < n; i++ {
			vals[i] = float64(b.FileIDs[i])
		}
		numeric("fileid", vals)
	}
	if q.cols&colstore.ScanStatus != 0 {
		vals := make([]float64, n)
		for i := 0; i < n; i++ {
			vals[i] = float64(b.Statuses[i])
		}
		numeric("status", vals)
	}
	if q.cols&colstore.ScanFlags != 0 {
		vals := make([]float64, n)
		for i := 0; i < n; i++ {
			vals[i] = float64(b.Flags[i])
		}
		numeric("flags", vals)
	}
	if q.cols&colstore.ScanAnnot != 0 {
		vals := make([]float64, n)
		for i := 0; i < n; i++ {
			vals[i] = float64(b.Annots[i])
		}
		numeric("annot", vals)
	}
	return ms
}

// results computes (once) the report artifacts at the configured worker
// count. report.ComputeWorkers is deterministic across worker counts,
// so the artifact bytes are the same at -workers 1, 4, or 8.
func (s *Service) results() (*report.Results, error) {
	s.resOnce.Do(func() {
		defer func() {
			if p := recover(); p != nil {
				s.resErr = fmt.Errorf("report computation panicked: %v", p)
			}
		}()
		s.res = report.ComputeWorkers(s.corpus.DataSet(), s.cfg.Workers)
	})
	return s.res, s.resErr
}

// artifacts is the /v1/report registry: name → renderer.
func (s *Service) artifacts() map[string]func(*report.Results) string {
	return map[string]func(*report.Results) string{
		"table1":   (*report.Results).Table1,
		"table2":   (*report.Results).Table2,
		"table3":   (*report.Results).Table3,
		"figure1":  (*report.Results).Figure1,
		"figure2":  (*report.Results).Figure2,
		"figure3":  (*report.Results).Figure3,
		"figure4":  (*report.Results).Figure4,
		"figure5":  (*report.Results).Figure5,
		"figure6":  (*report.Results).Figure6,
		"figure7":  (*report.Results).Figure7,
		"figure8":  (*report.Results).Figure8,
		"figure9":  (*report.Results).Figure9,
		"figure10": (*report.Results).Figure10,
		"figure11": (*report.Results).Figure11,
		"figure12": (*report.Results).Figure12,
		"figure13": (*report.Results).Figure13,
		"figure14": (*report.Results).Figure14,
		"section5": func(r *report.Results) string { return r.Section5(s.corpus.Parts().Snaps) },
		"section6": (*report.Results).Section6Lifetimes,
		"section7": (*report.Results).Section7SelfSim,
		"section8": (*report.Results).Section8,
		"section9": (*report.Results).Section9,
		"section10": func(r *report.Results) string {
			return r.Section10()
		},
		"process":    (*report.Results).ProcessView,
		"type":       (*report.Results).TypeView,
		"followups":  (*report.Results).FollowUps,
		"cachesweep": func(r *report.Results) string { return r.CacheSweep([]float64{1, 4, 16, 64}) },
	}
}

// reportBody is the /v1/report response.
type reportBody struct {
	Corpus    string   `json:"corpus_sha256"`
	Artifact  string   `json:"artifact,omitempty"`
	Text      string   `json:"text,omitempty"`
	Available []string `json:"available,omitempty"`
}

func (s *Service) handleReport(ctx context.Context, w http.ResponseWriter, r *http.Request, sp *trace.Span) {
	reg := s.artifacts()
	name := strings.ToLower(strings.TrimSpace(r.URL.Query().Get("artifact")))
	if name == "" {
		// The artifact index never depends on the corpus content, but
		// caching it keeps the serving path uniform.
		key := keyFor(s.corpus.SHA, "report|index")
		if body, ok := s.cache.Get(key); ok {
			sp.Annotate("cache", "hit")
			writeJSON(w, http.StatusOK, body)
			return
		}
		sp.Annotate("cache", "miss")
		names := make([]string, 0, len(reg))
		for n := range reg {
			names = append(names, n)
		}
		sort.Strings(names)
		body, _ := json.Marshal(reportBody{Corpus: s.corpus.SHAHex(), Available: names})
		body = append(body, '\n')
		s.cache.Put(key, body)
		writeJSON(w, http.StatusOK, body)
		return
	}
	render, ok := reg[name]
	if !ok {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown artifact %q", name))
		return
	}
	key := keyFor(s.corpus.SHA, "report|artifact="+name)
	if body, ok := s.cache.Get(key); ok {
		sp.Annotate("cache", "hit")
		writeJSON(w, http.StatusOK, body)
		return
	}
	sp.Annotate("cache", "miss")
	compute := sp.Child("compute")
	res, err := s.results()
	compute.Finish()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if ctx.Err() != nil {
		s.timeouts.Inc()
		writeError(w, http.StatusGatewayTimeout, "report exceeded the request deadline")
		return
	}
	body, err := json.Marshal(reportBody{Corpus: s.corpus.SHAHex(), Artifact: name, Text: render(res)})
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	body = append(body, '\n')
	s.cache.Put(key, body)
	writeJSON(w, http.StatusOK, body)
}

// statsBody is the /v1/stats response. It reports live state (cache
// residency, uptime) so it is the one endpoint exempt from caching.
type statsBody struct {
	Corpus       string `json:"corpus_sha256"`
	Dir          string `json:"dir"`
	Machines     int    `json:"machines"`
	Records      int    `json:"records"`
	Snapshots    int    `json:"snapshots"`
	CacheEntries int    `json:"cache_entries"`
	Workers      int    `json:"workers"`
	UptimeSec    int64  `json:"uptime_sec"`
}

func (s *Service) handleStats(ctx context.Context, w http.ResponseWriter, r *http.Request, sp *trace.Span) {
	body, err := json.Marshal(statsBody{
		Corpus:       s.corpus.SHAHex(),
		Dir:          s.corpus.Dir,
		Machines:     len(s.corpus.Machines()),
		Records:      s.corpus.TotalRecords(),
		Snapshots:    len(s.corpus.Parts().Snaps),
		CacheEntries: s.cache.Len(),
		Workers:      s.cfg.Workers,
		UptimeSec:    int64(time.Since(s.startedAt).Seconds()),
	})
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, append(body, '\n'))
}
