package query

import (
	"container/list"
	"sync"

	"repro/internal/obs"
)

// cacheShards fixes the shard fan-out of the result cache. Requests hash
// uniformly over shards by key, so the per-shard mutex is contended only
// at 1/cacheShards of the request rate; 16 shards keep even a saturated
// admission pool (bounded by MaxInflight, typically ≤ 2×GOMAXPROCS)
// effectively contention-free.
const cacheShards = 16

// Cache is a sharded, byte-bounded LRU of rendered response bodies. Keys
// are result identities — SHA-256 over (corpus SHA ‖ canonical query) —
// so a hit can be served verbatim: the stored bytes ARE the response the
// cold path produced, making cold and cached replies byte-identical by
// construction.
type Cache struct {
	shardMax int64
	shards   [cacheShards]cacheShard

	hits, misses, evictions *obs.Counter
	entries, bytes          *obs.Gauge
}

type cacheShard struct {
	mu    sync.Mutex
	lru   *list.List // front = most recent; values are *cacheEntry
	table map[cacheKey]*list.Element
	bytes int64
}

type cacheEntry struct {
	key  cacheKey
	body []byte
}

// NewCache builds a cache bounded by maxBytes across all shards. The
// registry (nil ok) receives the hit/miss/eviction accounting.
func NewCache(maxBytes int64, reg *obs.Registry) *Cache {
	if maxBytes <= 0 {
		maxBytes = 64 << 20
	}
	c := &Cache{
		shardMax: maxBytes / cacheShards,
		hits: reg.Counter("query_cache_hits_total",
			"query results served from the LRU result cache"),
		misses: reg.Counter("query_cache_misses_total",
			"query results computed cold (absent from the result cache)"),
		evictions: reg.Counter("query_cache_evictions_total",
			"cached results evicted to respect the cache byte bound"),
		entries: reg.Gauge("query_cache_entries",
			"results currently resident in the cache"),
		bytes: reg.Gauge("query_cache_bytes",
			"bytes of response bodies currently cached"),
	}
	for i := range c.shards {
		c.shards[i].lru = list.New()
		c.shards[i].table = map[cacheKey]*list.Element{}
	}
	return c
}

func (c *Cache) shard(key cacheKey) *cacheShard {
	return &c.shards[int(key[0])%cacheShards]
}

// Get returns the cached body for key, marking it most-recently used.
// The returned slice is shared — callers must not mutate it.
func (c *Cache) Get(key cacheKey) ([]byte, bool) {
	sh := c.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.table[key]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	sh.lru.MoveToFront(el)
	c.hits.Inc()
	return el.Value.(*cacheEntry).body, true
}

// Put stores body under key, evicting least-recently-used entries from
// the shard until it fits. A body larger than a whole shard is not
// cached at all (it would evict everything and then still thrash).
func (c *Cache) Put(key cacheKey, body []byte) {
	if int64(len(body)) > c.shardMax {
		return
	}
	sh := c.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.table[key]; ok {
		// Deterministic bodies make a concurrent double-compute benign:
		// both writers carry identical bytes, keep the resident one.
		sh.lru.MoveToFront(el)
		return
	}
	for sh.bytes+int64(len(body)) > c.shardMax {
		back := sh.lru.Back()
		if back == nil {
			break
		}
		ev := back.Value.(*cacheEntry)
		sh.lru.Remove(back)
		delete(sh.table, ev.key)
		sh.bytes -= int64(len(ev.body))
		c.evictions.Inc()
		c.entries.Add(-1)
		c.bytes.Add(-int64(len(ev.body)))
	}
	sh.table[key] = sh.lru.PushFront(&cacheEntry{key: key, body: body})
	sh.bytes += int64(len(body))
	c.entries.Add(1)
	c.bytes.Add(int64(len(body)))
}

// Len reports resident entries across shards.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.table)
		sh.mu.Unlock()
	}
	return n
}
