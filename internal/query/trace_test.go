package query

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/trace"
)

// TestScanTraceSpans pins the instrumented request shape: a cold scan
// returns its trace ID in X-Trace-Id, and the flight recorder holds a
// span tree covering admission → cache probe → per-machine fan-out
// (with the colstore block ledger) → merge → encode.
func TestScanTraceSpans(t *testing.T) {
	dir, _ := corpusDirs(t)
	tr := trace.New(trace.Config{})
	svc, _ := newTestService(t, dir, Config{Workers: 2, Tracer: tr})
	h := svc.Handler()

	code, hdr, _ := get(t, h, scanPath)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	tidStr := hdr.Get("X-Trace-Id")
	if tidStr == "" {
		t.Fatal("no X-Trace-Id header on traced request")
	}
	tid, err := trace.ParseID(tidStr)
	if err != nil {
		t.Fatalf("bad X-Trace-Id %q: %v", tidStr, err)
	}
	snap, ok := tr.Find(tid)
	if !ok {
		t.Fatalf("trace %s not in flight recorder", tidStr)
	}
	stages := map[string]int{}
	var machineScans []trace.SpanSnapshot
	for _, sp := range snap.Spans {
		stage, _, _ := strings.Cut(sp.Name, " ")
		stages[stage]++
		if stage == "scan" && sp.ParentID != 0 {
			machineScans = append(machineScans, sp)
		}
	}
	for _, want := range []string{"admit", "cache", "scan", "merge", "encode"} {
		if stages[want] == 0 {
			t.Errorf("stage %q missing from trace: %v", want, stages)
		}
	}
	if len(machineScans) != len(svc.Corpus().Machines()) {
		t.Errorf("%d machine scan spans, want %d", len(machineScans), len(svc.Corpus().Machines()))
	}
	for _, sp := range machineScans {
		if sp.Attr("blocks_scanned") == "" || sp.Attr("blocks_skipped") == "" {
			t.Errorf("scan span %q missing block ledger: %+v", sp.Name, sp.Attrs)
		}
		if sp.Attr("rows") == "" {
			t.Errorf("scan span %q missing rows: %+v", sp.Name, sp.Attrs)
		}
	}

	// The cached replay is a distinct trace whose cache probe hits.
	code, hdr2, _ := get(t, h, scanPath)
	if code != http.StatusOK {
		t.Fatalf("cached status %d", code)
	}
	tid2, err := trace.ParseID(hdr2.Get("X-Trace-Id"))
	if err != nil || tid2 == tid {
		t.Fatalf("cached request trace id %v (err %v), want distinct from %v", tid2, err, tid)
	}
	snap2, ok := tr.Find(tid2)
	if !ok {
		t.Fatal("cached trace not recorded")
	}
	var hitProbe bool
	for _, sp := range snap2.Spans {
		if sp.Name == "cache" && sp.Attr("result") == "hit" {
			hitProbe = true
		}
		if strings.HasPrefix(sp.Name, "scan ") {
			t.Errorf("cache hit still fanned out: %q", sp.Name)
		}
	}
	if !hitProbe {
		t.Error("cached request has no hit-annotated cache probe")
	}
}

// TestTraceIDsReproducible pins ID determinism across processes: two
// fresh services over the same corpus given the same request sequence
// hand out identical trace IDs.
func TestTraceIDsReproducible(t *testing.T) {
	dir, _ := corpusDirs(t)
	run := func() []string {
		svc, _ := newTestService(t, dir, Config{Workers: 2, Tracer: trace.New(trace.Config{})})
		h := svc.Handler()
		var ids []string
		for _, p := range []string{scanPath, scanPath, "/v1/machines", "/v1/scan?limit=5"} {
			_, hdr, _ := get(t, h, p)
			ids = append(ids, hdr.Get("X-Trace-Id"))
		}
		return ids
	}
	a, b := run(), run()
	for i := range a {
		if a[i] == "" || a[i] != b[i] {
			t.Errorf("request %d trace id %q vs %q, want equal and non-empty", i, a[i], b[i])
		}
	}
	if a[0] == a[1] {
		t.Error("repeated request got the same trace id; sequence must differentiate")
	}
}

// TestUntracedServiceHasNoHeader pins the nil contract end to end: no
// tracer, no header, no recorder, identical response bodies.
func TestUntracedServiceHasNoHeader(t *testing.T) {
	dir, _ := corpusDirs(t)
	svc, _ := newTestService(t, dir, Config{Workers: 2})
	code, hdr, bodyOff := get(t, svc.Handler(), scanPath)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if got := hdr.Get("X-Trace-Id"); got != "" {
		t.Errorf("untraced service set X-Trace-Id %q", got)
	}
	svcT, _ := newTestService(t, dir, Config{Workers: 2, Tracer: trace.New(trace.Config{})})
	_, _, bodyOn := get(t, svcT.Handler(), scanPath)
	if string(bodyOff) != string(bodyOn) {
		t.Error("tracing changed the response body")
	}
}

// TestLatencyExemplarResolvable pins the histogram↔trace bridge: after
// a traced request, the Prometheus text output carries an exemplar
// comment whose trace ID resolves in the flight recorder.
func TestLatencyExemplarResolvable(t *testing.T) {
	dir, _ := corpusDirs(t)
	reg := obs.NewRegistry()
	tr := trace.New(trace.Config{})
	svc, _ := newTestService(t, dir, Config{Workers: 2, Obs: reg, Tracer: tr})
	get(t, svc.Handler(), scanPath)

	var b strings.Builder
	if err := reg.Render(&b); err != nil {
		t.Fatal(err)
	}
	var tidStr string
	for _, line := range strings.Split(b.String(), "\n") {
		if strings.HasPrefix(line, "# exemplar query_request_wall_us_bucket") {
			i := strings.Index(line, "trace_id=")
			tidStr = line[i+len("trace_id=") : i+len("trace_id=")+16]
			break
		}
	}
	if tidStr == "" {
		t.Fatalf("no exemplar comment in metrics output:\n%s", b.String())
	}
	tid, err := trace.ParseID(tidStr)
	if err != nil {
		t.Fatalf("bad exemplar trace id %q: %v", tidStr, err)
	}
	if _, ok := tr.Find(tid); !ok {
		t.Fatalf("exemplar trace %s not resolvable in flight recorder", tidStr)
	}
}

// TestSlowQueryLog pins the slow-log view: the stage breakdown is read
// back from the request's own spans, one line per offending request.
func TestSlowQueryLog(t *testing.T) {
	dir, _ := corpusDirs(t)
	var lines []string
	tr := trace.New(trace.Config{})
	svc, _ := newTestService(t, dir, Config{
		Workers: 2,
		Tracer:  tr,
		SlowMS:  1,
		Logf:    func(format string, args ...any) { lines = append(lines, fmt.Sprintf(format, args...)) },
	})
	h := svc.Handler()

	// Drive a real request to seal a genuine trace, then replay the
	// slow-log decision with an explicit wall time on both sides of the
	// threshold so the test never depends on machine speed.
	_, hdr, _ := get(t, h, scanPath)
	tid, err := trace.ParseID(hdr.Get("X-Trace-Id"))
	if err != nil {
		t.Fatal(err)
	}
	snap, ok := tr.Find(tid)
	if !ok {
		t.Fatal("trace not recorded")
	}
	root := findRoot(t, tr, snap)
	req := httptest.NewRequest("GET", scanPath, nil)

	lines = nil
	svc.maybeLogSlow("scan", req, root, 500*time.Microsecond)
	if len(lines) != 0 {
		t.Fatalf("sub-threshold request logged: %v", lines)
	}
	svc.maybeLogSlow("scan", req, root, 25*time.Millisecond)
	if len(lines) != 1 {
		t.Fatalf("slow request logged %d lines, want 1: %v", len(lines), lines)
	}
	line := lines[0]
	for _, want := range []string{
		"method=GET", "endpoint=scan", "wall_ms=25", "cache=miss",
		"trace=" + tid.String(), "admit=", "scan=", "merge=", "encode=",
	} {
		if !strings.Contains(line, want) {
			t.Errorf("slow log line missing %q:\n%s", want, line)
		}
	}
}

// findRoot rebuilds a *Span handle for maybeLogSlow from a sealed
// snapshot by re-looking it up — the root span is identified by its
// span ID equaling the trace ID.
func findRoot(t *testing.T, tr *trace.Tracer, snap trace.TraceSnapshot) *trace.Span {
	t.Helper()
	// maybeLogSlow only reads TraceID from the span; a fresh root with
	// the same ID in a throwaway trace serves as the handle.
	return tr.StartTrace(snap.Family, snap.Name, snap.TraceID, nil)
}
