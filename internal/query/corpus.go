// Package query is the corpus serving layer: an HTTP JSON service that
// loads a saved trace corpus once and answers repeated questions about
// it cheaply — raw predicate-pushdown scans through the colstore engine
// and the paper's report artifacts through the analysis pipeline — from
// a sharded LRU result cache keyed by corpus identity and canonicalized
// query. It is the role SQL Server 7's star-schema OLAP warehouse played
// in §4 of the paper: the ~190M-record corpus was only useful because it
// could be queried interactively, many times, without re-reading tapes.
//
// Determinism contract: identical queries return byte-identical bodies
// whether served cold, from cache, or at any worker count. The cache
// stores the exact bytes the cold path rendered; the cold path fans out
// per machine into slot-indexed results merged in sorted machine order;
// and the report path reuses report.ComputeWorkers, whose output is
// already worker-count-invariant.
package query

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"

	"repro/internal/analysis"
	"repro/internal/collect"
	"repro/internal/colstore"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/tracefmt"
)

// cacheKey is a result identity: SHA-256 over corpus SHA ‖ canonical
// query string.
type cacheKey [sha256.Size]byte

// Corpus is a loaded corpus directory pinned in memory for serving:
// the columnar segments (pushdown scans), the row streams for machines
// saved without a segment (scan fallback), the analysis DataSet (report
// artifacts) and the corpus identity digest that scopes every cache key.
type Corpus struct {
	Dir string
	// SHA identifies the corpus content: a digest over the sorted
	// (machine name, logical record-stream SHA-256) pairs. The row and
	// columnar forms of the same corpus digest identically, because the
	// colstore footer SHA is defined over the logical record stream.
	SHA [sha256.Size]byte

	machines []string // sorted true machine names
	segs     map[string]*colstore.Segment
	rows     map[string][]tracefmt.Record // stream-order fallback records
	ds       *analysis.DataSet
	snaps    int
	parts    *core.Corpus
}

// OpenCorpus loads dir exactly once — columnar segments preferred, row
// streams as fallback — and computes the corpus identity. The registry
// (nil ok) receives colstore pushdown-ledger metrics for every scan the
// service runs later.
func OpenCorpus(dir string, reg *obs.Registry) (*Corpus, error) {
	return OpenCorpusTrace(dir, reg, nil)
}

// OpenCorpusTrace is OpenCorpus with per-machine load tracing on tr
// (nil tr loads identically and traces nothing).
func OpenCorpusTrace(dir string, reg *obs.Registry, tr *trace.Tracer) (*Corpus, error) {
	parts, err := core.LoadCorpusTrace(dir, reg, tr)
	if err != nil {
		return nil, err
	}
	c := &Corpus{
		Dir:   dir,
		segs:  parts.Segments,
		rows:  map[string][]tracefmt.Record{},
		ds:    parts.DS,
		snaps: len(parts.Snaps),
		parts: parts,
	}
	for _, mt := range parts.DS.Machines {
		c.machines = append(c.machines, mt.Name)
	}
	sort.Strings(c.machines)
	if len(c.machines) == 0 {
		return nil, fmt.Errorf("query: %s holds no trace streams", dir)
	}

	// Row-fallback machines keep their stream-order records resident:
	// scans over them must visit rows in the same order a columnar
	// segment of the same stream would.
	for _, name := range parts.Store.Machines() {
		if c.segs[name] != nil {
			continue
		}
		recs, err := parts.Store.Records(name)
		if err != nil {
			return nil, fmt.Errorf("query: %s: %w", name, err)
		}
		c.rows[name] = recs
	}

	h := sha256.New()
	for _, name := range c.machines {
		var sum [sha256.Size]byte
		if seg := c.segs[name]; seg != nil {
			sum = seg.SHA256()
		} else if recs, ok := c.rows[name]; ok {
			sum = colstore.RowStreamSHA(recs)
		} else {
			return nil, fmt.Errorf("query: machine %q has neither segment nor row stream", name)
		}
		h.Write([]byte(name))
		h.Write([]byte{0})
		h.Write(sum[:])
	}
	h.Sum(c.SHA[:0])
	return c, nil
}

// SHAHex is the corpus identity as the API renders it.
func (c *Corpus) SHAHex() string { return hex.EncodeToString(c.SHA[:]) }

// Machines lists the sorted true machine names.
func (c *Corpus) Machines() []string { return c.machines }

// Columnar reports whether the machine is served by a colstore segment
// (true) or the row-stream fallback (false).
func (c *Corpus) Columnar(name string) bool { return c.segs[name] != nil }

// Records reports the record count of one machine.
func (c *Corpus) Records(name string) int {
	if seg := c.segs[name]; seg != nil {
		return seg.Records()
	}
	return len(c.rows[name])
}

// TotalRecords sums record counts across the corpus.
func (c *Corpus) TotalRecords() int {
	n := 0
	for _, m := range c.machines {
		n += c.Records(m)
	}
	return n
}

// DataSet exposes the decoded analysis corpus (report artifacts).
func (c *Corpus) DataSet() *analysis.DataSet { return c.ds }

// Parts exposes the underlying storage layers.
func (c *Corpus) Parts() *core.Corpus { return c.parts }

// ScanMachine runs one machine's scan: pushdown through the colstore
// engine when a segment exists, an equivalent row-order filter over the
// resident records otherwise. Both paths produce rows in stream order,
// so the same corpus answers identically from either layout. The stats
// are the scan's own block ledger (zero for the row fallback, which has
// no blocks to skip).
func (c *Corpus) ScanMachine(name string, p colstore.Predicate, cols colstore.ColumnSet) (*colstore.Batch, colstore.ScanStats, error) {
	if seg := c.segs[name]; seg != nil {
		return seg.ScanColumnsStats(p, cols)
	}
	recs, ok := c.rows[name]
	if !ok {
		return nil, colstore.ScanStats{}, fmt.Errorf("%w for machine %q", collect.ErrNoRecords, name)
	}
	return scanRows(recs, p, cols), colstore.ScanStats{}, nil
}

// scanRows is the row-fallback scan: the exact predicate applied to each
// record in stream order, projected into the same Batch shape the
// columnar scan produces.
func scanRows(recs []tracefmt.Record, p colstore.Predicate, cols colstore.ColumnSet) *colstore.Batch {
	var want *[256]bool
	if len(p.Kinds) > 0 {
		var w [256]bool
		for _, k := range p.Kinds {
			w[byte(k)] = true
		}
		want = &w
	}
	out := &colstore.Batch{}
	for i := range recs {
		r := &recs[i]
		if want != nil && !want[byte(r.Kind)] {
			continue
		}
		if p.MinStart > 0 && r.Start < p.MinStart {
			continue
		}
		if p.MaxStart > 0 && r.Start > p.MaxStart {
			continue
		}
		out.N++
		if cols&colstore.ScanKind != 0 {
			out.Kinds = append(out.Kinds, r.Kind)
		}
		if cols&colstore.ScanStart != 0 {
			out.Starts = append(out.Starts, r.Start)
		}
		if cols&colstore.ScanEnd != 0 {
			out.Ends = append(out.Ends, r.End)
		}
		if cols&colstore.ScanOffset != 0 {
			out.Offsets = append(out.Offsets, r.Offset)
		}
		if cols&colstore.ScanLength != 0 {
			out.Lengths = append(out.Lengths, r.Length)
		}
		if cols&colstore.ScanReturned != 0 {
			out.Returns = append(out.Returns, r.Returned)
		}
		if cols&colstore.ScanFileSize != 0 {
			out.FileSizes = append(out.FileSizes, r.FileSize)
		}
		if cols&colstore.ScanProc != 0 {
			out.Procs = append(out.Procs, r.Proc)
		}
		if cols&colstore.ScanFileID != 0 {
			out.FileIDs = append(out.FileIDs, r.FileID)
		}
		if cols&colstore.ScanStatus != 0 {
			out.Statuses = append(out.Statuses, r.Status)
		}
		if cols&colstore.ScanFlags != 0 {
			out.Flags = append(out.Flags, r.Flags)
		}
		if cols&colstore.ScanAnnot != 0 {
			out.Annots = append(out.Annots, r.Annot)
		}
		if cols&colstore.ScanFOFl != 0 {
			out.FOFls = append(out.FOFls, r.FOFl)
		}
		if cols&colstore.ScanBytePos != 0 {
			out.BytePositions = append(out.BytePositions, r.BytePos)
		}
		if cols&colstore.ScanDisposition != 0 {
			out.Dispositions = append(out.Dispositions, r.Disposition)
		}
		if cols&colstore.ScanOptions != 0 {
			out.Options = append(out.Options, r.Options)
		}
		if cols&colstore.ScanAttributes != 0 {
			out.Attributes = append(out.Attributes, r.Attributes)
		}
		if cols&colstore.ScanFsControl != 0 {
			out.FsControls = append(out.FsControls, r.FsControl)
		}
		if cols&colstore.ScanName != 0 {
			out.Names = append(out.Names, r.Name[:]...)
		}
	}
	return out
}
