package query

import (
	"crypto/sha256"
	"fmt"
	"net/url"
	"sort"
	"strconv"
	"strings"

	"repro/internal/colstore"
	"repro/internal/sim"
	"repro/internal/tracefmt"
)

// scanColumns maps API column names onto the colstore projection bits,
// in the fixed order used for canonicalization and response assembly.
var scanColumns = []struct {
	name string
	bit  colstore.ColumnSet
}{
	{"kind", colstore.ScanKind},
	{"start", colstore.ScanStart},
	{"end", colstore.ScanEnd},
	{"offset", colstore.ScanOffset},
	{"length", colstore.ScanLength},
	{"returned", colstore.ScanReturned},
	{"filesize", colstore.ScanFileSize},
	{"proc", colstore.ScanProc},
	{"fileid", colstore.ScanFileID},
	{"status", colstore.ScanStatus},
	{"flags", colstore.ScanFlags},
	{"annot", colstore.ScanAnnot},
}

// ParseColumns resolves a comma-separated column list ("kind,start,end")
// to a projection mask. Empty selects kind,start.
func ParseColumns(spec string) (colstore.ColumnSet, error) {
	if spec == "" {
		return colstore.ScanKind | colstore.ScanStart, nil
	}
	var mask colstore.ColumnSet
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(strings.ToLower(part))
		found := false
		for _, c := range scanColumns {
			if c.name == part {
				mask |= c.bit
				found = true
				break
			}
		}
		if !found {
			return 0, fmt.Errorf("unknown column %q", part)
		}
	}
	return mask, nil
}

// columnNames renders a mask back to its canonical name list.
func columnNames(mask colstore.ColumnSet) []string {
	var names []string
	for _, c := range scanColumns {
		if mask&c.bit != 0 {
			names = append(names, c.name)
		}
	}
	return names
}

// ParseKinds accepts event-kind names (as printed by EventKind.String)
// or numeric values, comma-separated, and returns them sorted and
// deduplicated — the canonical form.
func ParseKinds(spec string) ([]tracefmt.EventKind, error) {
	if spec == "" {
		return nil, nil
	}
	byName := map[string]tracefmt.EventKind{}
	for k := 0; k < tracefmt.NumEventKinds; k++ {
		byName[strings.ToLower(tracefmt.EventKind(k).String())] = tracefmt.EventKind(k)
	}
	seen := map[tracefmt.EventKind]bool{}
	var kinds []tracefmt.EventKind
	add := func(k tracefmt.EventKind) {
		if !seen[k] {
			seen[k] = true
			kinds = append(kinds, k)
		}
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(strings.ToLower(part))
		if k, ok := byName[part]; ok {
			add(k)
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 0 || n >= tracefmt.NumEventKinds {
			return nil, fmt.Errorf("unknown event kind %q", part)
		}
		add(tracefmt.EventKind(n))
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	return kinds, nil
}

// scanQuery is a fully resolved, canonical scan request.
type scanQuery struct {
	machines []string // resolved, sorted; always explicit
	pred     colstore.Predicate
	cols     colstore.ColumnSet
	limit    int // max rows returned per machine (0 = unbounded)
}

// parseScanQuery resolves the URL parameters of /v1/scan against the
// corpus. Every accepted form normalizes to one canonical query, so
// equivalent requests share a cache entry.
func parseScanQuery(c *Corpus, vals url.Values) (*scanQuery, error) {
	q := &scanQuery{}
	if spec := vals.Get("machine"); spec != "" {
		seen := map[string]bool{}
		known := map[string]bool{}
		for _, m := range c.Machines() {
			known[m] = true
		}
		for _, part := range strings.Split(spec, ",") {
			part = strings.TrimSpace(part)
			if !known[part] {
				return nil, fmt.Errorf("unknown machine %q", part)
			}
			if !seen[part] {
				seen[part] = true
				q.machines = append(q.machines, part)
			}
		}
		sort.Strings(q.machines)
	} else {
		q.machines = c.Machines()
	}

	kinds, err := ParseKinds(vals.Get("kinds"))
	if err != nil {
		return nil, err
	}
	q.pred.Kinds = kinds

	q.cols, err = ParseColumns(vals.Get("cols"))
	if err != nil {
		return nil, err
	}

	bound := func(tick, hours string) (sim.Time, error) {
		if s := vals.Get(tick); s != "" {
			n, err := strconv.ParseInt(s, 10, 64)
			if err != nil || n < 0 {
				return 0, fmt.Errorf("bad %s %q", tick, s)
			}
			return sim.Time(n), nil
		}
		if s := vals.Get(hours); s != "" {
			h, err := strconv.ParseFloat(s, 64)
			if err != nil || h < 0 {
				return 0, fmt.Errorf("bad %s %q", hours, s)
			}
			return sim.Time(sim.FromSeconds(h * 3600)), nil
		}
		return 0, nil
	}
	if q.pred.MinStart, err = bound("min", "min_h"); err != nil {
		return nil, err
	}
	if q.pred.MaxStart, err = bound("max", "max_h"); err != nil {
		return nil, err
	}
	if q.pred.MaxStart > 0 && q.pred.MinStart > q.pred.MaxStart {
		return nil, fmt.Errorf("empty window: min %d > max %d", q.pred.MinStart, q.pred.MaxStart)
	}

	if s := vals.Get("limit"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad limit %q", s)
		}
		q.limit = n
	}
	return q, nil
}

// canonical renders the resolved query as the cache-key string: fixed
// field order, sorted members, no optional forms left. Two requests
// that mean the same scan canonicalize identically.
func (q *scanQuery) canonical() string {
	var b strings.Builder
	b.WriteString("scan|cols=")
	b.WriteString(strings.Join(columnNames(q.cols), ","))
	b.WriteString("|kinds=")
	for i, k := range q.pred.Kinds {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", int(k))
	}
	fmt.Fprintf(&b, "|limit=%d", q.limit)
	b.WriteString("|machines=")
	b.WriteString(strings.Join(q.machines, ","))
	fmt.Fprintf(&b, "|max=%d|min=%d", int64(q.pred.MaxStart), int64(q.pred.MinStart))
	return b.String()
}

// keyFor derives the cache key for a canonical query against a corpus.
func keyFor(corpus [sha256.Size]byte, canonical string) cacheKey {
	h := sha256.New()
	h.Write(corpus[:])
	h.Write([]byte{0})
	h.Write([]byte(canonical))
	var k cacheKey
	h.Sum(k[:0])
	return k
}
