package query

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
)

// testStudy builds one small fleet study, shared by every test in the
// package, and saves it in both layouts: the columnar directory is the
// primary fixture, the row directory proves layout equivalence.
var (
	studyOnce sync.Once
	colDir    string
	rowDir    string
	studyErr  error
)

func corpusDirs(t *testing.T) (columnar, row string) {
	t.Helper()
	studyOnce.Do(func() {
		s := core.NewStudy(core.Config{
			Seed:        7,
			Machines:    4,
			Duration:    30 * sim.Minute,
			WithNetwork: true,
			Columnar:    true,
		})
		if studyErr = s.Run(); studyErr != nil {
			return
		}
		colDir, studyErr = saveAs(s, true)
		if studyErr != nil {
			return
		}
		rowDir, studyErr = saveAs(s, false)
	})
	if studyErr != nil {
		t.Fatal(studyErr)
	}
	return colDir, rowDir
}

func saveAs(s *core.Study, columnar bool) (string, error) {
	dir, err := mkTempDir()
	if err != nil {
		return "", err
	}
	s.Cfg.Columnar = columnar
	if err := s.Save(dir); err != nil {
		return "", err
	}
	return dir, nil
}

var tempSeq int

// mkTempDir allocates corpus directories under a root that outlives any
// single test, since the saved study is shared package-wide.
func mkTempDir() (string, error) {
	tempSeq++
	return fmt.Sprintf("%s/query-corpus-%d", testTempRoot, tempSeq), nil
}

var testTempRoot string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "query-test-")
	if err != nil {
		panic(err)
	}
	testTempRoot = dir
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func newTestService(t *testing.T, dir string, cfg Config) (*Service, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	if cfg.Obs == nil {
		cfg.Obs = reg
	} else {
		reg = cfg.Obs
	}
	c, err := OpenCorpus(dir, reg)
	if err != nil {
		t.Fatal(err)
	}
	return NewService(c, cfg), reg
}

func get(t *testing.T, h http.Handler, path string) (int, http.Header, []byte) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	body, _ := io.ReadAll(rec.Result().Body)
	return rec.Code, rec.Result().Header, body
}

const scanPath = "/v1/scan?kinds=Read,Write,Create,Close&cols=kind,start,length,proc&min_h=0&max_h=24&limit=50"

// TestQueryDeterministic is the tentpole acceptance test: the same
// query answers with byte-identical bodies cold, cached, and at every
// worker count.
func TestQueryDeterministic(t *testing.T) {
	dir, _ := corpusDirs(t)
	paths := []string{
		scanPath,
		"/v1/scan?limit=25",
		"/v1/report?artifact=table2",
		"/v1/report?artifact=section8",
		"/v1/machines",
	}
	var want map[string][]byte
	for _, workers := range []int{1, 4, 8} {
		svc, reg := newTestService(t, dir, Config{Workers: workers})
		h := svc.Handler()
		got := map[string][]byte{}
		for _, p := range paths {
			code, _, cold := get(t, h, p)
			if code != http.StatusOK {
				t.Fatalf("workers=%d %s: status %d: %s", workers, p, code, cold)
			}
			code, _, cached := get(t, h, p)
			if code != http.StatusOK {
				t.Fatalf("workers=%d %s cached: status %d", workers, p, code)
			}
			if !bytes.Equal(cold, cached) {
				t.Fatalf("workers=%d %s: cached body differs from cold body", workers, p)
			}
			got[p] = cold
		}
		if hits := counterValue(t, reg, "query_cache_hits_total", ""); hits != uint64(len(paths)) {
			t.Fatalf("workers=%d: cache hits = %d, want %d", workers, hits, len(paths))
		}
		if want == nil {
			want = got
			continue
		}
		for _, p := range paths {
			if !bytes.Equal(want[p], got[p]) {
				t.Fatalf("%s: body differs between worker counts 1 and %d", p, workers)
			}
		}
	}
}

// TestRowColumnarEquivalent pins layout independence: the row and
// columnar saves of one study share a corpus identity and answer scans
// byte-identically, so cache keys survive a format conversion.
func TestRowColumnarEquivalent(t *testing.T) {
	cDir, rDir := corpusDirs(t)
	cSvc, _ := newTestService(t, cDir, Config{Workers: 4})
	rSvc, _ := newTestService(t, rDir, Config{Workers: 4})
	if cSvc.Corpus().SHAHex() != rSvc.Corpus().SHAHex() {
		t.Fatalf("corpus identity differs by layout: %s vs %s",
			cSvc.Corpus().SHAHex(), rSvc.Corpus().SHAHex())
	}
	for _, m := range cSvc.Corpus().Machines() {
		if !cSvc.Corpus().Columnar(m) {
			t.Fatalf("%s: expected a columnar segment in the .fsc save", m)
		}
	}
	for _, m := range rSvc.Corpus().Machines() {
		if rSvc.Corpus().Columnar(m) {
			t.Fatalf("%s: expected the row fallback in the .trz save", m)
		}
	}
	for _, p := range []string{scanPath, "/v1/scan?limit=10&kinds=3,5"} {
		_, _, cBody := get(t, cSvc.Handler(), p)
		_, _, rBody := get(t, rSvc.Handler(), p)
		if !bytes.Equal(cBody, rBody) {
			t.Fatalf("%s: row scan differs from columnar scan\ncol: %s\nrow: %s", p, cBody, rBody)
		}
	}
}

// TestCanonicalization pins that equivalent request spellings share one
// cache entry.
func TestCanonicalization(t *testing.T) {
	dir, _ := corpusDirs(t)
	svc, _ := newTestService(t, dir, Config{})
	c := svc.Corpus()
	cases := [][2]string{
		{"kinds=Read,Write", "kinds=Write,read"},
		{"kinds=Read", fmt.Sprintf("kinds=%d", kindNumber(t, "Read"))},
		{"min_h=1", fmt.Sprintf("min=%d", int64(sim.Hour))},
		{"cols=kind,start", ""},
	}
	for _, tc := range cases {
		a, err := parseScanQuery(c, parseVals(t, tc[0]))
		if err != nil {
			t.Fatalf("%s: %v", tc[0], err)
		}
		b, err := parseScanQuery(c, parseVals(t, tc[1]))
		if err != nil {
			t.Fatalf("%s: %v", tc[1], err)
		}
		if a.canonical() != b.canonical() {
			t.Errorf("%q and %q canonicalize differently:\n%s\n%s", tc[0], tc[1], a.canonical(), b.canonical())
		}
	}
	a, _ := parseScanQuery(c, parseVals(t, "kinds=Read"))
	b, _ := parseScanQuery(c, parseVals(t, "kinds=Write"))
	if a.canonical() == b.canonical() {
		t.Error("different queries share a canonical form")
	}
}

func parseVals(t *testing.T, query string) url.Values {
	t.Helper()
	v, err := url.ParseQuery(query)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func kindNumber(t *testing.T, name string) int {
	t.Helper()
	kinds, err := ParseKinds(name)
	if err != nil || len(kinds) != 1 {
		t.Fatalf("ParseKinds(%q) = %v, %v", name, kinds, err)
	}
	return int(kinds[0])
}

// TestBackpressure429 saturates the admission pool and checks the
// refusal path: over-limit requests get 429 + Retry-After immediately,
// admitted requests complete once capacity frees up.
func TestBackpressure429(t *testing.T) {
	dir, _ := corpusDirs(t)
	svc, reg := newTestService(t, dir, Config{MaxInflight: 1, MaxQueue: 1, Timeout: 10 * time.Second})
	h := svc.Handler()

	// Occupy the only execution slot so admitted requests queue.
	svc.slots <- struct{}{}

	results := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			code, _, _ := get(t, h, "/v1/machines")
			results <- code
		}()
	}
	// Wait until both are admitted (pending == MaxInflight+MaxQueue).
	deadline := time.Now().Add(5 * time.Second)
	for svc.pending.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("admitted requests never queued; pending=%d", svc.pending.Load())
		}
		time.Sleep(time.Millisecond)
	}

	code, hdr, _ := get(t, h, "/v1/machines")
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-limit request: status %d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 response missing Retry-After")
	}
	if got := counterValue(t, reg, "query_rejected_total", ""); got != 1 {
		t.Fatalf("query_rejected_total = %d, want 1", got)
	}

	// Free the slot; both queued requests must now complete with 200.
	<-svc.slots
	for i := 0; i < 2; i++ {
		select {
		case code := <-results:
			if code != http.StatusOK {
				t.Fatalf("queued request finished with %d", code)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("queued request never completed after the slot freed")
		}
	}
}

// TestRequestTimeout pins the deadline path: a request that cannot get
// an execution slot within its deadline answers 504.
func TestRequestTimeout(t *testing.T) {
	dir, _ := corpusDirs(t)
	svc, reg := newTestService(t, dir, Config{MaxInflight: 1, MaxQueue: 4, Timeout: 50 * time.Millisecond})
	svc.slots <- struct{}{} // wedge the pool
	start := time.Now()
	code, _, _ := get(t, svc.Handler(), "/v1/machines")
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", code)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond || elapsed > 5*time.Second {
		t.Fatalf("timed out after %s, want ~50ms", elapsed)
	}
	if got := counterValue(t, reg, "query_timeouts_total", ""); got != 1 {
		t.Fatalf("query_timeouts_total = %d, want 1", got)
	}
}

// TestDrain pins graceful shutdown: Drain waits for admitted work and
// flips subsequent requests to 503.
func TestDrain(t *testing.T) {
	dir, _ := corpusDirs(t)
	svc, _ := newTestService(t, dir, Config{})
	h := svc.Handler()
	if code, _, _ := get(t, h, "/v1/machines"); code != http.StatusOK {
		t.Fatalf("pre-drain request: %d", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if code, _, _ := get(t, h, "/v1/machines"); code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain request: %d, want 503", code)
	}
	if code, _, _ := get(t, h, "/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain healthz: %d, want 503", code)
	}
}

// TestCacheLRU unit-tests the sharded cache: eviction respects the byte
// bound and least-recently-used order.
func TestCacheLRU(t *testing.T) {
	cache := NewCache(16*64, nil) // 64 bytes per shard
	key := func(b byte, n int) cacheKey {
		var k cacheKey
		k[0] = b // pin the shard
		k[1] = byte(n)
		return k
	}
	body := bytes.Repeat([]byte("x"), 30)
	cache.Put(key(0, 1), body)
	cache.Put(key(0, 2), body)
	if _, ok := cache.Get(key(0, 1)); !ok {
		t.Fatal("entry 1 missing before eviction")
	}
	// Entry 1 is now most-recent; inserting a third evicts entry 2.
	cache.Put(key(0, 3), body)
	if _, ok := cache.Get(key(0, 2)); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if _, ok := cache.Get(key(0, 1)); !ok {
		t.Fatal("recently-used entry was evicted")
	}
	// Oversized bodies are refused, not thrashed in.
	cache.Put(key(0, 4), bytes.Repeat([]byte("y"), 65))
	if _, ok := cache.Get(key(0, 4)); ok {
		t.Fatal("oversized body was cached")
	}
	if n := cache.Len(); n != 2 {
		t.Fatalf("Len = %d, want 2", n)
	}
}

// TestScanLimit pins the truncation contract: matched counts the full
// predicate hits, returned counts the projected rows.
func TestScanLimit(t *testing.T) {
	dir, _ := corpusDirs(t)
	svc, _ := newTestService(t, dir, Config{})
	_, _, full := get(t, svc.Handler(), "/v1/scan?cols=kind")
	_, _, limited := get(t, svc.Handler(), "/v1/scan?cols=kind&limit=5")
	var fb, lb scanBody
	if err := json.Unmarshal(full, &fb); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(limited, &lb); err != nil {
		t.Fatal(err)
	}
	if fb.Matched != lb.Matched {
		t.Fatalf("limit changed matched: %d vs %d", fb.Matched, lb.Matched)
	}
	if fb.Matched == 0 {
		t.Fatal("test corpus matched no rows")
	}
	if fb.Returned != fb.Matched {
		t.Fatalf("unlimited scan returned %d of %d", fb.Returned, fb.Matched)
	}
	for _, m := range lb.Machines {
		if len(m.Kinds) > 5 {
			t.Fatalf("%s: limit ignored, %d rows", m.Name, len(m.Kinds))
		}
		if m.Matched > 5 && !m.Truncated {
			t.Fatalf("%s: truncation not flagged", m.Name)
		}
	}
}

// TestLoadGenerator drives the built-in load mode at a deliberately
// tiny admission pool and checks both outcomes appear: successes and
// 429 rejections, with no transport errors.
func TestLoadGenerator(t *testing.T) {
	dir, _ := corpusDirs(t)
	svc, _ := newTestService(t, dir, Config{MaxInflight: 1, MaxQueue: 1, Workers: 2})
	mux := http.NewServeMux()
	mux.Handle("/", svc.Handler())
	ts := httptest.NewServer(mux)
	defer ts.Close()

	stats := RunLoad(context.Background(), ts.URL, svc.Corpus().Machines(), LoadConfig{
		Clients:  8,
		Requests: 30,
		Seed:     3,
	})
	if stats.Sent != 8*30 {
		t.Fatalf("sent %d, want %d", stats.Sent, 8*30)
	}
	if stats.Errors != 0 {
		t.Fatalf("load run saw %d transport/status errors", stats.Errors)
	}
	if stats.OK == 0 {
		t.Fatal("load run never succeeded")
	}
	if stats.Rejected == 0 {
		t.Fatal("load run at MaxInflight=1 never tripped the 429 path")
	}
}

// counterValue reads one counter family value from the registry render.
func counterValue(t *testing.T, reg *obs.Registry, name, label string) uint64 {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.Render(&buf); err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, line := range bytes.Split(buf.Bytes(), []byte("\n")) {
		s := string(line)
		if !hasMetric(s, name) {
			continue
		}
		if label != "" && !contains(s, label) {
			continue
		}
		var v uint64
		if _, err := fmt.Sscanf(s[lastSpace(s)+1:], "%d", &v); err == nil {
			total += v
		}
	}
	return total
}

func hasMetric(line, name string) bool {
	return len(line) > len(name) && line[:len(name)] == name &&
		(line[len(name)] == ' ' || line[len(name)] == '{')
}

func contains(s, sub string) bool { return bytes.Contains([]byte(s), []byte(sub)) }

func lastSpace(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == ' ' {
			return i
		}
	}
	return -1
}
