package repro

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/collect"
	"repro/internal/colstore"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/tracefmt"
)

// benchBlockRecords sizes columnar blocks so the 45-machine benchmark
// corpus (~35K records per machine) spans several blocks per segment —
// the regime where zone maps have something to skip. The default 64K
// blocks would hold each of these machines in one block.
const benchBlockRecords = 4096

// fleetRecords decodes the shared fleet corpus once, per machine.
var (
	fleetRecsOnce sync.Once
	fleetRecs     map[string][]tracefmt.Record
)

func fleetRecords(b *testing.B) map[string][]tracefmt.Record {
	b.Helper()
	s := fleetCorpus(b)
	fleetRecsOnce.Do(func() {
		fleetRecs = map[string][]tracefmt.Record{}
		for _, m := range s.Store.Machines() {
			recs, err := s.Store.Records(m)
			if err != nil {
				if errors.Is(err, collect.ErrNoRecords) {
					continue
				}
				panic(err)
			}
			fleetRecs[m] = recs
		}
	})
	return fleetRecs
}

// BenchmarkColumnarEncode measures columnar encoding of the 45-machine
// corpus and pins the acceptance bound: the columnar segments must not
// exceed the DEFLATE row corpus they replace.
func BenchmarkColumnarEncode(b *testing.B) {
	s := fleetCorpus(b)
	recs := fleetRecords(b)
	var rows int
	for _, r := range recs {
		rows += len(r)
	}
	b.SetBytes(int64(rows) * int64(tracefmt.RecordSize))
	var colBytes int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		colBytes = 0
		for _, r := range recs {
			data, _, err := colstore.EncodeSegment(r, colstore.Options{BlockRecords: benchBlockRecords})
			if err != nil {
				b.Fatal(err)
			}
			colBytes += int64(len(data))
		}
	}
	b.StopTimer()
	rowBytes := s.Store.CompressedBytes()
	if colBytes > rowBytes {
		b.Fatalf("columnar corpus %d bytes exceeds DEFLATE row corpus %d bytes", colBytes, rowBytes)
	}
	b.ReportMetric(float64(rows), "records")
	b.ReportMetric(float64(colBytes)/1024, "columnar_KB")
	b.ReportMetric(float64(rowBytes)/1024, "row_deflate_KB")
}

// columnar segment fixture, encoded once from the fleet corpus.
var (
	colSegsOnce  sync.Once
	colSegsBytes map[string][]byte
	colSegsTotal int64
)

func columnarSegments(b *testing.B) (map[string][]byte, int64) {
	b.Helper()
	recs := fleetRecords(b)
	colSegsOnce.Do(func() {
		colSegsBytes = map[string][]byte{}
		for m, r := range recs {
			data, _, err := colstore.EncodeSegment(r, colstore.Options{BlockRecords: benchBlockRecords})
			if err != nil {
				panic(err)
			}
			colSegsBytes[m] = data
			colSegsTotal += int64(len(data))
		}
	})
	return colSegsBytes, colSegsTotal
}

// BenchmarkColumnarScan measures predicate-pushdown scans over the
// 45-machine columnar corpus and asserts the pushdown actually fired:
// zone maps skip blocks (obs counter > 0) and the kind-filtered
// two-column scan decodes measurably fewer bytes than the corpus holds.
func BenchmarkColumnarScan(b *testing.B) {
	raw, total := columnarSegments(b)

	scan := func(b *testing.B, pred colstore.Predicate, cols colstore.ColumnSet, wantSkips bool) {
		b.Helper()
		reg := obs.NewRegistry()
		m := colstore.NewMetrics(reg)
		segs := make([]*colstore.Segment, 0, len(raw))
		for _, data := range raw {
			seg, err := colstore.OpenSegment(data, m)
			if err != nil {
				b.Fatal(err)
			}
			segs = append(segs, seg)
		}
		var matched int
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			matched = 0
			for _, seg := range segs {
				batch, err := seg.ScanColumns(pred, cols)
				if err != nil {
					b.Fatal(err)
				}
				matched += batch.N
			}
		}
		b.StopTimer()
		iters := float64(b.N)
		scanned, skipped := m.BlocksScanned.Value(), m.BlocksSkipped.Value()
		if wantSkips && skipped == 0 {
			b.Fatalf("zone maps skipped no blocks (%d scanned)", scanned)
		}
		decodedPerOp := float64(m.TotalBytesDecoded()) / iters
		if decodedPerOp*2 >= float64(total) {
			b.Fatalf("pushdown decoded %.0f of %d corpus bytes per scan — projection is not saving work", decodedPerOp, total)
		}
		b.ReportMetric(float64(matched), "matched_records")
		b.ReportMetric(float64(scanned)/iters, "blocks_scanned")
		b.ReportMetric(float64(skipped)/iters, "blocks_skipped")
		b.ReportMetric(decodedPerOp/1024, "decoded_KB")
		b.ReportMetric(float64(total)/1024, "corpus_KB")
	}

	// Rare kinds (flushes, byte-range locks): most blocks lack them
	// entirely, so the kind bitmap eliminates blocks wholesale and the
	// survivors decode only the kind + two requested columns.
	b.Run("kind-filtered-two-col", func(b *testing.B) {
		scan(b, colstore.Predicate{
			Kinds: []tracefmt.EventKind{tracefmt.EvFlushBuffers, tracefmt.EvLock},
		}, colstore.ScanStart|colstore.ScanLength, true)
	})

	// A one-minute window of the 15-minute trace: min/max-start zone
	// maps skip the blocks outside it.
	b.Run("time-window", func(b *testing.B) {
		scan(b, colstore.Predicate{
			MinStart: sim.Time(5 * sim.Minute),
			MaxStart: sim.Time(6 * sim.Minute),
		}, colstore.ScanKind|colstore.ScanStart, true)
	})

	// Baseline: full materialization through ScanRecords, no predicate —
	// the row-equivalent cost the filtered scans are measured against.
	b.Run("full-read", func(b *testing.B) {
		reg := obs.NewRegistry()
		m := colstore.NewMetrics(reg)
		segs := make([]*colstore.Segment, 0, len(raw))
		for _, data := range raw {
			seg, err := colstore.OpenSegment(data, m)
			if err != nil {
				b.Fatal(err)
			}
			segs = append(segs, seg)
		}
		var rows int
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rows = 0
			for _, seg := range segs {
				recs, err := seg.ReadAll()
				if err != nil {
					b.Fatal(err)
				}
				rows += len(recs)
			}
		}
		b.ReportMetric(float64(rows), "records")
	})
}

// compute fixture: the scan-optimized (NoCompress) layout — dictionary,
// varint and delta encodings without the per-column DEFLATE wrapper.
// This is the layout a scan-bound deployment chooses: block decodes are
// allocation-free and skip the Huffman work entirely, trading encoded
// size (reported as corpus_KB) for scan throughput.
var (
	colSegsScanOnce  sync.Once
	colSegsScanBytes map[string][]byte
	colSegsScanTotal int64
)

func columnarSegmentsScanOptimized(b *testing.B) (map[string][]byte, int64) {
	b.Helper()
	recs := fleetRecords(b)
	colSegsScanOnce.Do(func() {
		colSegsScanBytes = map[string][]byte{}
		for m, r := range recs {
			data, _, err := colstore.EncodeSegment(r, colstore.Options{BlockRecords: benchBlockRecords, NoCompress: true})
			if err != nil {
				panic(err)
			}
			colSegsScanBytes[m] = data
			colSegsScanTotal += int64(len(data))
		}
	})
	return colSegsScanBytes, colSegsScanTotal
}

// BenchmarkColumnarCompute measures the vectorized compute path: open
// segments once, then per iteration batch-scan the numeric columns into
// fresh columnar traces and fold every figure's kernel straight off the
// column vectors — no row materialization anywhere. The segments use
// the scan-optimized (NoCompress) layout; corpus_KB reports what that
// trade costs on disk. The row pipeline the path replaces (DEFLATE
// decode into sorted records + record-slice kernels) is timed once per
// worker count and attached as row_pipeline_ms, so speedup_vs_row
// tracks the acceptance bound in BENCH_analysis. The decode ledger
// rides along: the numeric kernel scans never inflate the name column
// (only the per-machine name-map scan touches it), and steady-state
// scans run from the warm scratch pool.
func BenchmarkColumnarCompute(b *testing.B) {
	raw, total := columnarSegmentsScanOptimized(b)
	s := fleetCorpus(b)
	base, err := s.DataSetWorkers(8)
	if err != nil {
		b.Fatal(err)
	}

	// Row-pipeline baseline: corpus decode plus compute, at the same
	// worker count, timed once (the benchmark loop below must not pay
	// for it).
	rowMS := map[int]float64{}
	for _, workers := range []int{1, 4, 8} {
		start := time.Now()
		ds, err := s.DataSetWorkers(workers)
		if err != nil {
			b.Fatal(err)
		}
		report.ComputeWorkers(ds, workers)
		rowMS[workers] = float64(time.Since(start).Microseconds()) / 1e3
	}

	for _, workers := range []int{1, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			reg := obs.NewRegistry()
			m := colstore.NewMetrics(reg)
			segs := make([]*colstore.Segment, len(base.Machines))
			for i, mt := range base.Machines {
				seg, err := colstore.OpenSegment(raw[mt.Name], m)
				if err != nil {
					b.Fatal(err)
				}
				segs[i] = seg
			}
			var instances int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ds := &analysis.DataSet{}
				for j, mt := range base.Machines {
					fresh, err := analysis.NewMachineTraceColumnar(mt.Name, mt.Category, segs[j])
					if err != nil {
						b.Fatal(err)
					}
					fresh.ProcNames = mt.ProcNames
					ds.Machines = append(ds.Machines, fresh)
				}
				r := report.ComputeWorkers(ds, workers)
				instances = len(r.All)
			}
			b.StopTimer()
			iters := float64(b.N)
			colMS := float64(b.Elapsed().Microseconds()) / 1e3 / iters
			b.ReportMetric(float64(instances), "instances")
			b.ReportMetric(colMS, "columnar_ms")
			b.ReportMetric(rowMS[workers], "row_pipeline_ms")
			if colMS > 0 {
				b.ReportMetric(rowMS[workers]/colMS, "speedup_vs_row")
			}
			b.ReportMetric(float64(m.TotalBytesDecoded())/iters/1024, "decoded_KB")
			// The name family is touched only by the per-machine name-map
			// scan (EvNameMap-predicated); the numeric kernel scans never
			// inflate it.
			b.ReportMetric(float64(m.BytesDecoded(colstore.FamilyName))/iters/1024, "name_decoded_KB")
			b.ReportMetric(float64(total)/1024, "corpus_KB")
			b.ReportMetric(float64(m.BatchesReused.Value())/iters, "batches_reused")
		})
	}
}
