// Command fsreport runs a study end-to-end (or loads a saved corpus) and
// prints the complete paper-versus-measured report: every table, every
// figure, and the section summaries, in publication order.
//
// Usage:
//
//	fsreport -machines 20 -hours 12 -seed 1
//	fsreport -in traces/
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/snapshot"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fsreport: ")
	var (
		in       = flag.String("in", "", "load a saved corpus instead of running a study")
		machines = flag.Int("machines", 15, "fleet size when running a fresh study")
		hours    = flag.Float64("hours", 8, "simulated hours when running a fresh study")
		seed     = flag.Uint64("seed", 1, "study seed")
	)
	flag.Parse()

	var r *report.Results
	var snaps []*snapshot.Snapshot
	if *in != "" {
		ds, loadedSnaps, err := core.Load(*in)
		if err != nil {
			log.Fatal(err)
		}
		snaps = loadedSnaps
		r = report.Compute(ds)
	} else {
		fmt.Fprintf(os.Stderr, "running %d machines for %.1f simulated hours...\n", *machines, *hours)
		study := core.NewStudy(core.Config{
			Seed:            *seed,
			Machines:        *machines,
			Duration:        sim.FromSeconds(*hours * 3600),
			WithNetwork:     true,
			SnapshotAtStart: true,
		})
		if err := study.Run(); err != nil {
			log.Fatal(err)
		}
		snaps = study.Snapshots
		var err error
		r, err = study.Results()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "collected %d records on %d machines\n",
			r.TotalRecords(), len(r.DS.Machines))
	}

	sections := []func() string{
		r.Table1, r.Table2, r.Table3,
		r.Figure1, r.Figure2, r.Figure3, r.Figure4, r.Figure5,
		r.Figure6, r.Figure7, r.Figure8, r.Figure9, r.Figure10,
		r.Figure11, r.Figure12, r.Figure13, r.Figure14,
		func() string { return r.Section5(snaps) },
		r.Section6Lifetimes, r.Section8, r.Section9, r.Section10,
		r.Section7SelfSim, r.ProcessView, r.TypeView, r.FollowUps,
		func() string { return r.CacheSweep([]float64{1, 4, 16}) },
	}
	for _, s := range sections {
		fmt.Println(s())
	}
}
