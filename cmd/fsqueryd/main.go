// Command fsqueryd serves a saved trace corpus over HTTP: raw
// predicate-pushdown scans and the paper's report artifacts, answered
// from a sharded LRU result cache so repeated questions cost a hash
// lookup instead of a corpus pass.
//
// Usage:
//
//	fsqueryd -dir traces/ -addr :8090
//	curl 'localhost:8090/v1/scan?kinds=ReadFile&min_h=1&max_h=3&limit=10'
//	curl 'localhost:8090/v1/report?artifact=table2'
//	curl 'localhost:8090/metrics'
//
// The built-in load generator saturates the admission pool and prints
// the outcome mix (ok / 429-rejected / errors):
//
//	fsqueryd -dir traces/ -load -load-clients 32
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/query"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fsqueryd: ")

	dir := flag.String("dir", "traces", "trace corpus directory (from fstrace)")
	addr := flag.String("addr", ":8090", "listen address (port 0 picks a free one)")
	workers := flag.Int("workers", 4, "scan/report fan-out width")
	cacheMB := flag.Int("cache-mb", 64, "result cache bound in MiB")
	maxInflight := flag.Int("max-inflight", 8, "requests executing concurrently")
	maxQueue := flag.Int("max-queue", 32, "requests allowed to queue for a slot")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request deadline")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "graceful drain bound on SIGTERM")
	slowMS := flag.Int64("slow-ms", 1000, "log requests slower than this many ms with their stage breakdown (0 disables)")
	load := flag.Bool("load", false, "run the built-in load generator against this process, then exit")
	loadClients := flag.Int("load-clients", 16, "load generator: concurrent clients")
	loadRequests := flag.Int("load-requests", 200, "load generator: requests per client")
	loadSeed := flag.Uint64("load-seed", 1, "load generator: query mix seed")
	flag.Parse()

	reg := obs.NewRegistry()
	tracer := trace.New(trace.Config{})
	corpus, err := query.OpenCorpusTrace(*dir, reg, tracer)
	if err != nil {
		log.Fatal(err)
	}
	svc := query.NewService(corpus, query.Config{
		Workers:     *workers,
		CacheBytes:  int64(*cacheMB) << 20,
		MaxInflight: *maxInflight,
		MaxQueue:    *maxQueue,
		Timeout:     *timeout,
		Obs:         reg,
		Tracer:      tracer,
		SlowMS:      *slowMS,
	})

	mux := http.NewServeMux()
	mux.Handle("/", svc.Handler())
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/spans", tracer.Handler())

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()
	log.Printf("serving %s (%d machines, %d records, corpus %s) on %s",
		*dir, len(corpus.Machines()), corpus.TotalRecords(), corpus.SHAHex()[:12], ln.Addr())

	if *load {
		stats := query.RunLoad(context.Background(), "http://"+ln.Addr().String(), corpus.Machines(), query.LoadConfig{
			Clients:  *loadClients,
			Requests: *loadRequests,
			Seed:     *loadSeed,
		})
		fmt.Println(stats)
		shutdown(svc, srv, *drainTimeout)
		if stats.Errors > 0 {
			os.Exit(1)
		}
		return
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	got := <-sig
	log.Printf("%s: draining (bound %s)", got, *drainTimeout)
	shutdown(svc, srv, *drainTimeout)
}

// shutdown drains admitted requests, then closes the listener. Order
// matters: Drain first so in-flight work completes while the socket
// still accepts the (refused-with-503) stragglers, then Shutdown to
// release the port.
func shutdown(svc *query.Service, srv *http.Server, bound time.Duration) {
	ctx, cancel := context.WithTimeout(context.Background(), bound)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		log.Printf("drain: %v (closing anyway)", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	log.Print("drained")
}
