// Command fsfleet runs the full §2/§3 study — 45 machines traced for
// 4 weeks — as a sharded fleet across a worker pool. It is fstrace at
// production scale: each machine runs on its own scheduler shard, live
// progress (events/sec, sim:real ratio, per-shard lag) prints while the
// fleet runs, completed machines checkpoint so an interrupted run can
// resume, and per-machine stream hashes let two runs be compared without
// shipping the corpora.
//
// Usage:
//
//	fsfleet -out traces/ -workers 8 -checkpoint-dir ckpt/
//	fsfleet -out traces/ -workers 8 -checkpoint-dir ckpt/ -resume
//
//	fsfleet -serve :9470 -out traces/        # run a collection server
//	fsfleet -collect host:9470 -workers 8    # ship the study to it
//
// The per-machine trace streams are byte-identical at any -workers value,
// and a resumed run converges to the same corpus as an uninterrupted one.
// With -collect, agents ship over the fault-tolerant NTTRACE2 wire (spill
// ring, retry/backoff, idempotent resend); records that overflow the
// spill ring during an outage are counted and reported, never silently
// lost.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"repro/internal/agent"
	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fsfleet: ")
	var (
		out      = flag.String("out", "traces", "output directory for the trace corpus")
		machines = flag.Int("machines", 45, "fleet size (paper: 45)")
		weeks    = flag.Float64("weeks", 4, "traced period in simulated weeks (paper: 4)")
		hours    = flag.Float64("hours", 0, "traced period in simulated hours (overrides -weeks)")
		seed     = flag.Uint64("seed", 1, "study seed (same seed ⇒ identical corpus at any worker count)")
		workers  = flag.Int("workers", runtime.NumCPU(), "machine shards running concurrently")
		ckptDir  = flag.String("checkpoint-dir", "", "persist each completed machine here (enables -resume)")
		resume   = flag.Bool("resume", false, "restore completed machines from -checkpoint-dir")
		network  = flag.Bool("network", true, "mount per-user network shares over the redirector")
		noFast   = flag.Bool("block-fastio", false, "insert an opaque filter that blocks FastIO (§10 ablation)")
		hash     = flag.Bool("hash", false, "print each machine's compressed-stream SHA-256")
		interval = flag.Duration("progress", 5*time.Second, "progress print interval (0 disables)")
		collAddr = flag.String("collect", "", "ship trace streams to a live collection server at this address (corpus lives server-side)")
		spill    = flag.Int("spill", 0, "per-agent spill-ring capacity in buffers for -collect (0 = default 64)")
		serve    = flag.String("serve", "", "run as a collection server on this listen address (with -out; fleet flags ignored)")
		metrics  = flag.String("metrics-addr", "", "serve live Prometheus-text /metrics, /debug/spans and /debug/pprof on this address")
		traceOut = flag.String("trace-out", "", "write the run's span trees as Chrome trace_event JSON here (load in Perfetto)")
		top      = flag.Bool("top", false, "repaint a top(1)-style per-shard view instead of one-line progress")
	)
	flag.Parse()

	// One registry instruments the whole process (fleet run or collection
	// server). Metrics and spans are observational only: the corpus is
	// byte-identical with or without them. Shard spans ride the virtual
	// clock, so the tracer costs nothing on the simulated timeline.
	reg := obs.NewRegistry()
	var tracer *trace.Tracer
	if *traceOut != "" || *metrics != "" {
		tracer = trace.New(trace.Config{})
	}
	if *metrics != "" {
		ms, err := obs.Serve(*metrics, reg,
			obs.Mount{Pattern: "/debug/spans", Handler: tracer.Handler()})
		if err != nil {
			log.Fatal(err)
		}
		defer ms.Close()
		fmt.Fprintf(os.Stderr, "metrics on http://%s/metrics (spans on /debug/spans, pprof on /debug/pprof/)\n", ms.Addr)
	}

	if *serve != "" {
		runServer(*serve, *out, reg)
		return
	}

	duration := sim.FromSeconds(*weeks * 7 * 24 * 3600)
	if *hours > 0 {
		duration = sim.FromSeconds(*hours * 3600)
	}
	if *resume && *ckptDir == "" {
		log.Fatal("-resume needs -checkpoint-dir")
	}
	if *collAddr != "" && (*ckptDir != "" || *resume) {
		log.Fatal("-collect is incompatible with -checkpoint-dir/-resume (the server owns the corpus)")
	}

	study := core.NewStudy(core.Config{
		Seed:            *seed,
		Machines:        *machines,
		Duration:        duration,
		WithNetwork:     *network,
		SnapshotAtStart: true,
		FastIOBlocked:   *noFast,
		Workers:         *workers,
		CheckpointDir:   *ckptDir,
		Resume:          *resume,
		CollectAddr:     *collAddr,
		NetSink:         agent.NetSinkConfig{SpillSlots: *spill},
		Obs:             reg,
		Trace:           tracer,
	})

	// writeTrace exports whatever spans exist so far; it runs on the
	// interrupt path too, so a killed run still leaves an inspectable
	// trace beside its checkpoints.
	writeTrace := func() {
		if *traceOut == "" {
			return
		}
		f, err := os.Create(*traceOut)
		if err == nil {
			err = tracer.WriteTraceEvents(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "warning: trace out: %v\n", err)
			return
		}
		fmt.Fprintf(os.Stderr, "wrote span trace to %s\n", *traceOut)
	}

	st := study.Engine.Status()
	fmt.Fprintf(os.Stderr, "fleet of %d machines, %.1f simulated days, %d workers (seed %d)\n",
		*machines, duration.Seconds()/86400, *workers, *seed)
	if st.Restored > 0 {
		fmt.Fprintf(os.Stderr, "restored %d machines from %s\n", st.Restored, *ckptDir)
	}

	// SIGINT/SIGTERM cancel the run; completed machines keep their
	// checkpoints, so the same command with -resume picks up from there.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	done := make(chan struct{})
	if *top {
		ivl := *interval
		if ivl <= 0 {
			ivl = time.Second
		}
		go func() {
			t := time.NewTicker(ivl)
			defer t.Stop()
			prev := 0
			for {
				select {
				case <-done:
					return
				case <-t.C:
					prev = repaintTop(study.Engine.Status(), prev)
				}
			}
		}()
	} else if *interval > 0 {
		go func() {
			t := time.NewTicker(*interval)
			defer t.Stop()
			for {
				select {
				case <-done:
					return
				case <-t.C:
					fmt.Fprintln(os.Stderr, study.Engine.Status())
				}
			}
		}()
	}
	start := time.Now()
	err := study.RunContext(ctx)
	close(done)
	if err != nil {
		if ctx.Err() != nil {
			st := study.Engine.Status()
			fmt.Fprintf(os.Stderr, "interrupted after %s: %s\n", time.Since(start).Round(time.Second), st)
			if *ckptDir != "" && st.Done+st.Restored > 0 {
				fmt.Fprintf(os.Stderr, "re-run with -resume -checkpoint-dir %s to continue\n", *ckptDir)
			}
			writeTrace()
			os.Exit(130)
		}
		log.Fatal(err)
	}

	st = study.Engine.Status()
	fmt.Fprintf(os.Stderr, "finished in %s: %s\n", time.Since(start).Round(time.Second), st)

	// End-of-run telemetry snapshot beside the corpus (the checkpoint-dir
	// copy is written by the fleet engine, even on interrupted runs).
	if err := reg.WriteSnapshot(filepath.Join(*out, "obs.json")); err != nil {
		fmt.Fprintf(os.Stderr, "warning: obs snapshot: %v\n", err)
	}
	writeTrace()

	if *collAddr != "" {
		// The corpus lives on the collection server; report delivery
		// accounting instead of saving locally. Loss is never silent.
		ns := study.NetStats()
		fmt.Fprintf(os.Stderr, "shipped %d records to %s (%d spilled buffers, %d send errors, %d reconnects)\n",
			ns.Shipped, *collAddr, ns.Spilled, ns.SendErrors, ns.Reconnects)
		if ns.Lost > 0 {
			fmt.Fprintf(os.Stderr, "WARNING: %d records LOST (spill-ring overflow or drain timeout)\n", ns.Lost)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "no records lost")
		return
	}
	fmt.Fprintf(os.Stderr, "collected %d trace records, %d snapshots, %d KB compressed\n",
		study.TotalEvents(), len(study.Snapshots), study.Store.CompressedBytes()/1024)

	if *hash {
		for _, name := range study.Store.Machines() {
			sum, err := study.Store.StreamSum(name)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%x  %s\n", sum, name)
		}
	}
	if err := study.Save(*out); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "saved corpus to %s\n", *out)
}

// repaintTop redraws the top(1)-style fleet view in place, erasing to the
// end of every line so shrinking cells leave no residue; prev is the line
// count of the previous frame. Returns this frame's line count.
func repaintTop(st fleet.Status, prev int) int {
	var buf bytes.Buffer
	st.RenderTop(&buf)
	lines := bytes.Count(buf.Bytes(), []byte{'\n'})
	if prev > 0 {
		fmt.Fprintf(os.Stderr, "\033[%dA", prev)
	}
	out := bytes.ReplaceAll(buf.Bytes(), []byte{'\n'}, []byte("\033[K\n"))
	os.Stderr.Write(out)
	return lines
}

// runServer runs a collection server until SIGINT/SIGTERM, then saves the
// gathered corpus to out. Mid-stream truncations (agent died after the
// handshake) are reported with machine name and frame count; agents that
// reconnect resend idempotently, so truncation alone is not data loss.
func runServer(addr, out string, reg *obs.Registry) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	store := collect.NewStore()
	srv := collect.ServeObs(ln, store, reg)
	fmt.Fprintf(os.Stderr, "collection server listening on %s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()

	srv.Close()
	for _, e := range srv.Errors() {
		fmt.Fprintf(os.Stderr, "stream error: %v\n", e)
	}
	if err := store.Finalize(); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "received %d records from %d machines\n",
		store.TotalRecords(), len(store.Machines()))
	if err := store.SaveDir(out); err != nil {
		log.Fatal(err)
	}
	if err := reg.WriteSnapshot(filepath.Join(out, "obs.json")); err != nil {
		fmt.Fprintf(os.Stderr, "warning: obs snapshot: %v\n", err)
	}
	fmt.Fprintf(os.Stderr, "saved corpus to %s\n", out)
}
