// Command fsanalyze loads a trace corpus saved by fstrace and prints any
// of the paper's tables and figures.
//
// Usage:
//
//	fsanalyze -in traces/ table2
//	fsanalyze -in traces/ fig10 fig13
//	fsanalyze -in traces/ all
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fsanalyze: ")
	in := flag.String("in", "traces", "trace corpus directory (from fstrace)")
	flag.Parse()

	ds, snaps, err := core.Load(*in)
	if err != nil {
		log.Fatal(err)
	}
	if len(ds.Machines) == 0 {
		log.Fatal("no machine traces found in ", *in)
	}
	r := report.Compute(ds)

	renders := map[string]func() string{
		"table1": r.Table1, "table2": r.Table2, "table3": r.Table3,
		"fig1": r.Figure1, "fig2": r.Figure2, "fig3": r.Figure3,
		"fig4": r.Figure4, "fig5": r.Figure5, "fig6": r.Figure6,
		"fig7": r.Figure7, "fig8": r.Figure8, "fig9": r.Figure9,
		"fig10": r.Figure10, "fig11": r.Figure11, "fig12": r.Figure12,
		"fig13": r.Figure13, "fig14": r.Figure14,
		"sec6": r.Section6Lifetimes, "sec8": r.Section8,
		"sec9": r.Section9, "sec10": r.Section10,
		"sec5":      func() string { return r.Section5(snaps) },
		"sec7x":     r.Section7SelfSim,
		"procs":     r.ProcessView,
		"types":     r.TypeView,
		"cachesim":  func() string { return r.CacheSweep([]float64{1, 4, 16, 64}) },
		"followups": r.FollowUps,
	}
	order := []string{
		"table1", "table2", "table3",
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
		"fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
		"sec5", "sec6", "sec8", "sec9", "sec10",
		"sec7x", "procs", "types", "cachesim", "followups",
	}

	args := flag.Args()
	if len(args) == 0 {
		fmt.Println("specify artefacts to print, e.g.: table2 fig10 sec9, or 'all'; available:")
		fmt.Println("  " + strings.Join(order, " "))
		return
	}
	if len(args) == 1 && args[0] == "all" {
		args = order
	}
	for _, a := range args {
		f, ok := renders[strings.ToLower(a)]
		if !ok {
			log.Fatalf("unknown artefact %q (try: %s)", a, strings.Join(order, " "))
		}
		fmt.Println(f())
	}
}
