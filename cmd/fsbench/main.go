// Command fsbench turns a measured trace corpus into benchmark
// configuration and replays it — the paper's stated downstream use of the
// collection ("as configuration information for realistic file system
// benchmarks", §1) under the §7 requirement that synthetic workloads
// carry the measured heavy-tailed parameters.
//
// Usage:
//
//	fsbench fit    -in traces -out profile.json     # fit a profile
//	fsbench replay -profile profile.json -hours 2   # drive a machine with it
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/synth"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fsbench: ")
	if len(os.Args) < 2 {
		fmt.Println("usage: fsbench fit|replay [flags]")
		os.Exit(2)
	}
	switch os.Args[1] {
	case "fit":
		fs := flag.NewFlagSet("fit", flag.ExitOnError)
		in := fs.String("in", "traces", "trace corpus directory")
		out := fs.String("out", "profile.json", "output profile path")
		fs.Parse(os.Args[2:])
		ds, _, err := core.Load(*in)
		if err != nil {
			log.Fatal(err)
		}
		pro := synth.Fit(ds)
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		if err := pro.Write(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("fitted profile: gap α=%.2f, control %.0f%%, RO %.0f%%, WO %.0f%%, RW %.0f%% → %s\n",
			pro.OpenGapMS.Alpha, 100*pro.ControlFraction, 100*pro.ReadOnlyFraction,
			100*pro.WriteOnlyFraction, 100*pro.ReadWriteFraction, *out)
	case "replay":
		fs := flag.NewFlagSet("replay", flag.ExitOnError)
		proPath := fs.String("profile", "profile.json", "profile to replay")
		hours := fs.Float64("hours", 2, "simulated hours")
		seed := fs.Uint64("seed", 9, "seed")
		fs.Parse(os.Args[2:])
		f, err := os.Open(*proPath)
		if err != nil {
			log.Fatal(err)
		}
		pro, err := synth.ReadProfile(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		study := core.NewStudy(core.Config{Seed: *seed, Machines: 1,
			Duration: sim.FromSeconds(*hours * 3600)})
		node := study.Nodes[0]
		node.Driver.Apps = nil
		p := workload.NewProc(node.M, "synthbench", `C:`, sim.NewRNG(*seed+1))
		node.Driver.AddApp(synth.NewReplayer(p, node.Layout, pro, sim.NewRNG(*seed+2)))
		if err := study.Run(); err != nil {
			log.Fatal(err)
		}
		ds, err := study.DataSet()
		if err != nil {
			log.Fatal(err)
		}
		check := synth.Fit(ds)
		fmt.Printf("replayed %d events over %.1f h\n", study.TotalEvents(), *hours)
		fmt.Printf("source vs replay: control %.0f%%→%.0f%%  RO %.0f%%→%.0f%%  WO %.0f%%→%.0f%%  gap α %.2f→%.2f\n",
			100*pro.ControlFraction, 100*check.ControlFraction,
			100*pro.ReadOnlyFraction, 100*check.ReadOnlyFraction,
			100*pro.WriteOnlyFraction, 100*check.WriteOnlyFraction,
			pro.OpenGapMS.Alpha, check.OpenGapMS.Alpha)
	default:
		log.Fatalf("unknown subcommand %q", os.Args[1])
	}
}
