// Command fstrace runs a simulated trace collection — the §2/§3 study: a
// fleet of Windows NT 4.0 machines instrumented with the trace filter
// driver, shipping records to the collection store, with daily file
// system snapshots — and saves the resulting corpus to a directory for
// analysis with fsanalyze/fsreport.
//
// Usage:
//
//	fstrace -out traces/ -machines 45 -hours 24 -seed 1
//	fstrace -collect host:9470 -machines 45 -hours 24   # ship to a live server
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/agent"
	"repro/internal/colstore"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fstrace: ")
	var (
		out      = flag.String("out", "traces", "output directory for the trace corpus")
		machines = flag.Int("machines", 45, "fleet size (paper: 45)")
		hours    = flag.Float64("hours", 24, "traced period in simulated hours (paper: 4 weeks)")
		seed     = flag.Uint64("seed", 1, "study seed (same seed ⇒ identical study)")
		network  = flag.Bool("network", true, "mount per-user network shares over the redirector")
		noFast   = flag.Bool("block-fastio", false, "insert an opaque filter that blocks FastIO (§10 ablation)")
		workers  = flag.Int("workers", 1, "machine shards running concurrently (results are identical at any count)")
		collAddr = flag.String("collect", "", "ship trace streams to a live collection server at this address (corpus lives server-side)")
		spill    = flag.Int("spill", 0, "per-agent spill-ring capacity in buffers for -collect (0 = default 64)")
		metrics  = flag.String("metrics-addr", "", "serve live Prometheus-text /metrics and /debug/pprof on this address")
		format   = flag.String("format", "row", "saved corpus layout: row (*.trz), columnar (*.fsc) or both")
	)
	flag.Parse()
	switch *format {
	case "row", "columnar", "both":
	default:
		log.Fatalf("-format must be row, columnar or both (got %q)", *format)
	}

	reg := obs.NewRegistry()
	if *metrics != "" {
		ms, err := obs.Serve(*metrics, reg)
		if err != nil {
			log.Fatal(err)
		}
		defer ms.Close()
		fmt.Fprintf(os.Stderr, "metrics on http://%s/metrics (pprof on /debug/pprof/)\n", ms.Addr)
	}

	study := core.NewStudy(core.Config{
		Seed:            *seed,
		Machines:        *machines,
		Duration:        sim.FromSeconds(*hours * 3600),
		WithNetwork:     *network,
		SnapshotAtStart: true,
		FastIOBlocked:   *noFast,
		Workers:         *workers,
		CollectAddr:     *collAddr,
		NetSink:         agent.NetSinkConfig{SpillSlots: *spill},
		Columnar:        *format == "columnar",
		Obs:             reg,
	})
	fmt.Fprintf(os.Stderr, "running %d machines for %.1f simulated hours (seed %d)...\n",
		*machines, *hours, *seed)
	if err := study.Run(); err != nil {
		log.Fatal(err)
	}
	if *collAddr != "" {
		ns := study.NetStats()
		fmt.Fprintf(os.Stderr, "shipped %d records to %s (%d spilled buffers, %d send errors, %d reconnects)\n",
			ns.Shipped, *collAddr, ns.Spilled, ns.SendErrors, ns.Reconnects)
		if ns.Lost > 0 {
			fmt.Fprintf(os.Stderr, "WARNING: %d records LOST (spill-ring overflow or drain timeout)\n", ns.Lost)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "no records lost")
		return
	}
	fmt.Fprintf(os.Stderr, "collected %d trace records, %d snapshots, %d KB compressed\n",
		study.TotalEvents(), len(study.Snapshots), study.Store.CompressedBytes()/1024)
	if err := study.Save(*out); err != nil {
		log.Fatal(err)
	}
	if *format == "both" {
		// Save wrote the row layout; add the columnar segments beside it.
		if _, err := study.Store.SaveColumnarDir(*out, colstore.Options{}, nil); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "saved %s corpus to %s\n", *format, *out)
}
