// Command fsreplay re-drives a trace corpus saved by fstrace through a
// freshly built simulated NT stack, and optionally validates that the
// replayed trace reproduces the original's headline metrics.
//
// Usage:
//
//	fsreplay -in traces/ -mode fast -validate
//	fsreplay -in traces/ -mode faithful -out replayed/
//	fsreplay -in traces/ -block-fastio -validate   (expected to FAIL validation)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/replay"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fsreplay: ")
	in := flag.String("in", "traces", "trace corpus directory (from fstrace)")
	modeName := flag.String("mode", "fast", "replay clock: fast (back-to-back) or faithful (recorded timestamps)")
	validate := flag.Bool("validate", false, "diff replayed-vs-original metrics; exit 1 outside tolerance")
	seed := flag.Uint64("seed", 1, "seed for the replayed machines' random streams")
	blockFastIO := flag.Bool("block-fastio", false, "insert the Opaque filter on every volume (§10 what-if)")
	cacheMB := flag.Int64("cache-mb", 0, "file cache size override in MB (0 = stack default)")
	out := flag.String("out", "", "save the replayed trace corpus to this directory")
	flag.Parse()

	mode, err := replay.ParseMode(*modeName)
	if err != nil {
		log.Fatal(err)
	}

	ds, _, err := core.Load(*in)
	if err != nil {
		log.Fatal(err)
	}
	if len(ds.Machines) == 0 {
		log.Fatal("no machine traces found in ", *in)
	}

	cfg := replay.Config{
		Mode:        mode,
		Seed:        *seed,
		BlockFastIO: *blockFastIO,
		CacheBytes:  *cacheMB << 20,
	}
	res, err := replay.Replay(ds, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("replayed %d machines (%s mode, seed %d)\n", len(res.Machines), mode, *seed)
	for _, mr := range res.Machines {
		p := mr.Plan
		fmt.Printf("  %-16s %8d records  %8d steps  %6d skipped  issued %8d  diverged %6d  dead %5d  fastio %d/%d\n",
			mr.Machine, p.Records(), len(p.Steps), p.Skips.Total(),
			mr.Issued, mr.Diverged, mr.Dead,
			mr.Stats.FastIoSucceeded, mr.Stats.FastIoAttempts)
	}

	if *out != "" {
		if err := res.Store.SaveDir(*out); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("replayed corpus saved to %s\n", *out)
	}

	if *validate {
		rds, err := res.DataSet(ds)
		if err != nil {
			log.Fatal(err)
		}
		v := replay.Validate(ds, rds, mode)
		fmt.Println("\nvalidation (original vs replayed):")
		for _, d := range v.Deltas {
			fmt.Println("  " + d.String())
		}
		if !v.Pass() {
			fmt.Println("FAIL: replay outside tolerance")
			os.Exit(1)
		}
		fmt.Println("PASS: replay within tolerance")
	}
}
