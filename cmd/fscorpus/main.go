// Command fscorpus manages columnar trace corpora: it converts between
// the row layout (*.trz, per-machine DEFLATE record streams) and the
// colstore layout (*.fsc, per-machine columnar segments with zone maps),
// inspects segment layout and encoding statistics, proves row/columnar
// equivalence via the logical-stream SHA-256, and runs predicate-pushdown
// scans with the pushdown ledger (blocks scanned vs skipped, bytes
// decoded per column family) printed after the results.
//
// Usage:
//
//	fscorpus convert -to columnar traces/        # add *.fsc beside *.trz
//	fscorpus convert -to row -out rows/ traces/  # materialize row streams
//	fscorpus stats traces/                       # layout + per-column bytes
//	fscorpus verify traces/                      # SHA-256 row≡columnar proof
//	fscorpus scan -kinds read,write -min-h 1 -max-h 2 traces/
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/collect"
	"repro/internal/colstore"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/tracefmt"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fscorpus: ")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "convert":
		cmdConvert(os.Args[2:])
	case "stats":
		cmdStats(os.Args[2:])
	case "verify":
		cmdVerify(os.Args[2:])
	case "scan":
		cmdScan(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: fscorpus <convert|stats|verify|scan> [flags] <corpus-dir>
  convert -to columnar|row [-out dir] [-block-records n] <dir>
  stats   <dir>
  verify  [-q] <dir>
  scan    [-kinds k1,k2] [-min-h h] [-max-h h] <dir>`)
	os.Exit(2)
}

// dirArg returns the one positional corpus directory of a subcommand.
func dirArg(fs *flag.FlagSet) string {
	if fs.NArg() != 1 {
		fmt.Fprintf(os.Stderr, "usage: fscorpus %s [flags] <corpus-dir>\n", fs.Name())
		os.Exit(2)
	}
	return fs.Arg(0)
}

func cmdConvert(args []string) {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	to := fs.String("to", "columnar", "target layout: columnar or row")
	out := fs.String("out", "", "output directory (default: write beside the source)")
	blockRecs := fs.Int("block-records", 0, "records per columnar block (0 = default 65536)")
	fs.Parse(args)
	dir := dirArg(fs)
	if *out == "" {
		*out = dir
	}
	switch *to {
	case "columnar":
		store, err := collect.LoadDir(dir)
		if err != nil {
			log.Fatal(err)
		}
		sums, err := store.SaveColumnarDir(*out, colstore.Options{BlockRecords: *blockRecs}, nil)
		if err != nil {
			log.Fatal(err)
		}
		var recs, bytes int64
		for _, s := range sums {
			recs += int64(s.Records)
			bytes += s.Bytes
		}
		fmt.Printf("encoded %d machines, %d records, %d KB columnar into %s\n",
			len(sums), recs, bytes/1024, *out)
	case "row":
		segs, err := collect.LoadColumnarDir(dir, nil)
		if err != nil {
			log.Fatal(err)
		}
		if len(segs) == 0 {
			log.Fatalf("no *%s segments in %s", collect.ColumnarExt, dir)
		}
		store := collect.NewStore()
		for name, seg := range segs {
			recs, err := seg.ReadAll()
			if err != nil {
				log.Fatalf("%s: %v", name, err)
			}
			if err := store.Append(name, recs); err != nil {
				log.Fatalf("%s: %v", name, err)
			}
		}
		if err := store.Finalize(); err != nil {
			log.Fatal(err)
		}
		if err := store.SaveDir(*out); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("decoded %d machines, %d records into row streams in %s\n",
			len(segs), store.TotalRecords(), *out)
	default:
		log.Fatalf("-to must be columnar or row (got %q)", *to)
	}
}

func cmdStats(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	fs.Parse(args)
	dir := dirArg(fs)
	segs, err := collect.LoadColumnarDir(dir, nil)
	if err != nil {
		log.Fatal(err)
	}
	if len(segs) == 0 {
		log.Fatalf("no *%s segments in %s", collect.ColumnarExt, dir)
	}
	names := make([]string, 0, len(segs))
	for n := range segs {
		names = append(names, n)
	}
	sort.Strings(names)
	var total colstore.SegmentStats
	for _, name := range names {
		st, err := segs[name].Stats()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("%-22s %9d records %4d blocks %9d KB\n", name, st.Records, st.Blocks, st.Bytes/1024)
		total.Records += st.Records
		total.Blocks += st.Blocks
		total.Bytes += st.Bytes
		for c := range st.ColumnBytes {
			total.ColumnBytes[c] += st.ColumnBytes[c]
		}
	}
	fmt.Printf("%-22s %9d records %4d blocks %9d KB\n", "TOTAL", total.Records, total.Blocks, total.Bytes/1024)
	rowBytes := int64(total.Records) * int64(tracefmt.RecordSize)
	fmt.Printf("raw row equivalent %d KB (%.1fx)\n", rowBytes/1024, float64(rowBytes)/float64(total.Bytes))
	fmt.Println("per-column encoded bytes:")
	for c := 0; c < colstore.NumColumns; c++ {
		col := colstore.Column(c)
		fmt.Printf("  %-12s %-5s %10d\n", col.Name(), col.ColumnFamily(), total.ColumnBytes[c])
	}
}

func cmdVerify(args []string) {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	quiet := fs.Bool("q", false, "print only failures and the final verdict")
	fs.Parse(args)
	dir := dirArg(fs)
	segs, err := collect.LoadColumnarDir(dir, nil)
	if err != nil {
		log.Fatal(err)
	}
	if len(segs) == 0 {
		log.Fatalf("no *%s segments in %s", collect.ColumnarExt, dir)
	}
	store, err := collect.LoadDir(dir)
	if err != nil {
		log.Fatal(err)
	}
	rows := map[string]bool{}
	for _, m := range store.Machines() {
		rows[m] = true
	}
	names := make([]string, 0, len(segs))
	for n := range segs {
		names = append(names, n)
	}
	sort.Strings(names)
	failed := 0
	for _, name := range names {
		seg := segs[name]
		// Internal proof: decode every record, re-encode, digest.
		if err := seg.VerifySHA(); err != nil {
			failed++
			fmt.Printf("FAIL %-22s %v\n", name, err)
			continue
		}
		// Cross-layout proof: the row stream's logical bytes must digest
		// to the same value the segment's footer carries.
		status := "ok (columnar self-check)"
		if rows[name] {
			recs, err := store.Records(name)
			if err != nil {
				log.Fatalf("%s: %v", name, err)
			}
			sum := colstore.RowStreamSHA(recs)
			if sum != seg.SHA256() {
				failed++
				fmt.Printf("FAIL %-22s row stream digest %x != segment %x\n", name, sum, seg.SHA256())
				continue
			}
			status = "ok (row ≡ columnar)"
		}
		if !*quiet {
			sha := seg.SHA256()
			fmt.Printf("%-22s %9d records  sha256 %x  %s\n", name, seg.Records(), sha[:8], status)
		}
	}
	if failed > 0 {
		log.Fatalf("%d of %d machines FAILED verification", failed, len(names))
	}
	fmt.Printf("verified %d machines: columnar segments are digest-identical to their record streams\n", len(names))
}

// parseKinds accepts event-kind names (as printed by EventKind.String)
// or numeric values, comma-separated.
func parseKinds(spec string) ([]tracefmt.EventKind, error) {
	if spec == "" {
		return nil, nil
	}
	byName := map[string]tracefmt.EventKind{}
	for k := 0; k < tracefmt.NumEventKinds; k++ {
		byName[strings.ToLower(tracefmt.EventKind(k).String())] = tracefmt.EventKind(k)
	}
	var kinds []tracefmt.EventKind
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(strings.ToLower(part))
		if k, ok := byName[part]; ok {
			kinds = append(kinds, k)
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 0 || n >= tracefmt.NumEventKinds {
			return nil, fmt.Errorf("unknown event kind %q", part)
		}
		kinds = append(kinds, tracefmt.EventKind(n))
	}
	return kinds, nil
}

func cmdScan(args []string) {
	fs := flag.NewFlagSet("scan", flag.ExitOnError)
	kindSpec := fs.String("kinds", "", "comma-separated event kinds (names or numbers); empty = all")
	minH := fs.Float64("min-h", 0, "window start in simulated hours (0 = open)")
	maxH := fs.Float64("max-h", 0, "window end in simulated hours (0 = open)")
	fs.Parse(args)
	dir := dirArg(fs)
	kinds, err := parseKinds(*kindSpec)
	if err != nil {
		log.Fatal(err)
	}
	pred := colstore.Predicate{Kinds: kinds}
	if *minH > 0 {
		pred.MinStart = sim.Time(sim.FromSeconds(*minH * 3600))
	}
	if *maxH > 0 {
		pred.MaxStart = sim.Time(sim.FromSeconds(*maxH * 3600))
	}
	reg := obs.NewRegistry()
	m := colstore.NewMetrics(reg)
	segs, err := collect.LoadColumnarDir(dir, m)
	if err != nil {
		log.Fatal(err)
	}
	if len(segs) == 0 {
		log.Fatalf("no *%s segments in %s", collect.ColumnarExt, dir)
	}
	names := make([]string, 0, len(segs))
	for n := range segs {
		names = append(names, n)
	}
	sort.Strings(names)
	var matched, totalRecs, totalBytes int64
	for _, name := range names {
		seg := segs[name]
		batch, err := seg.ScanColumns(pred, colstore.ScanKind|colstore.ScanStart|colstore.ScanLength)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("%-22s %9d of %9d records match\n", name, batch.N, seg.Records())
		matched += int64(batch.N)
		totalRecs += int64(seg.Records())
		totalBytes += seg.Bytes()
	}
	fmt.Printf("matched %d of %d records across %d machines\n", matched, totalRecs, len(names))
	fmt.Printf("pushdown: %d blocks scanned, %d skipped by zone maps; %d of %d KB decoded\n",
		m.BlocksScanned.Value(), m.BlocksSkipped.Value(),
		int64(m.TotalBytesDecoded())/1024, totalBytes/1024)
}
