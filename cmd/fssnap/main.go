// Command fssnap works with file-system snapshots: it summarises a saved
// snapshot file and diffs two snapshots the way §5 analyses day-over-day
// content change (profile-tree and WWW-cache shares).
//
// Usage:
//
//	fssnap info  traces/personal-01-000.snap.json
//	fssnap diff  day0.snap.json day1.snap.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/snapshot"
	"repro/internal/stats"
)

func load(path string) *snapshot.Snapshot {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	s, err := snapshot.Read(f)
	if err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	return s
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("fssnap: ")
	flag.Parse()
	args := flag.Args()
	if len(args) < 2 {
		fmt.Println("usage: fssnap info <snap> | fssnap diff <old> <new>")
		os.Exit(2)
	}
	switch args[0] {
	case "info":
		s := load(args[1])
		files := s.Files()
		fmt.Printf("machine %s volume %s taken %v\n", s.Machine, s.Volume, s.TakenAt)
		fmt.Printf("  %d files, %d directories, %d MB\n",
			len(files), len(s.Dirs()), s.TotalBytes()>>20)
		sizes := make([]float64, len(files))
		for i, f := range files {
			sizes[i] = float64(f.Size)
		}
		sm := stats.Summarize(sizes)
		fmt.Printf("  file sizes: p50=%.0fB p90=%.0fB max=%.0fB\n", sm.P50, sm.P90, sm.Max)
		fmt.Printf("  size tail: Hill α = %.2f\n", stats.Hill(sizes, len(sizes)/50+2))
	case "diff":
		if len(args) < 3 {
			log.Fatal("diff needs two snapshot files")
		}
		oldS, newS := load(args[1]), load(args[2])
		d := snapshot.Compare(oldS, newS)
		fmt.Printf("added %d, changed %d, removed %d entries\n",
			len(d.Added), len(d.Changed), len(d.Removed))
		fmt.Printf("  share under \\winnt\\profiles: %.0f%% (paper: 94%%)\n",
			100*d.FractionUnder(`\winnt\profiles`))
		// Locate the WWW cache under any profile.
		for _, e := range newS.Entries() {
			if e.Rec.IsDir && e.Rec.Name == "Temporary Internet Files" {
				fmt.Printf("  share under %s: %.0f%% (paper: up to 90%%)\n",
					e.Path, 100*d.FractionUnder(e.Path))
				break
			}
		}
	default:
		log.Fatalf("unknown subcommand %q", args[0])
	}
}
