// Distributed: the §3 deployment shape — per-machine trace agents ship
// their filter-driver buffers over TCP to a dedicated collection server,
// which stores the streams compressed; the analysis then runs on the
// server's corpus. (The other examples use the in-process sink; this one
// exercises the real wire.)
package main

import (
	"fmt"
	"log"
	"net"

	"repro/internal/agent"
	"repro/internal/analysis"
	"repro/internal/collect"
	"repro/internal/fsgen"
	"repro/internal/ntos/machine"
	"repro/internal/ntos/volume"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/tracefmt"
	"repro/internal/workload"
)

func main() {
	// The collection server.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	store := collect.NewStore()
	srv := collect.Serve(ln, store)
	fmt.Printf("collection server listening on %s\n", srv.Addr())

	// Two traced machines, each with its own agent and TCP sink. They
	// share one virtual clock, as in a single study.
	sched := sim.NewScheduler()
	root := sim.NewRNG(2024)
	var sinks []*agent.NetSink
	var drivers []*workload.Driver
	var machines []*machine.Machine
	for i, cat := range []machine.Category{machine.Personal, machine.Pool} {
		name := fmt.Sprintf("remote-%02d", i+1)
		sink, err := agent.NewNetSink(srv.Addr(), name)
		if err != nil {
			log.Fatal(err)
		}
		sinks = append(sinks, sink)
		var ag *agent.Agent
		m := machine.New(sched, root.Fork(uint64(i)+1), machine.Config{
			Name: name, Category: cat,
			TraceFlush: func(recs []tracefmt.Record) {
				if ag != nil {
					ag.Flush(recs)
				}
			},
		})
		machines = append(machines, m)
		m.AddVolume(`C:`, volume.IDE1998, volume.FlavorNTFS, false)
		lay := fsgen.PopulateLocal(m.SystemVolume().FS, root.Fork(uint64(i)+100), fsgen.Config{
			User: fmt.Sprintf("user%02d", i+1), Category: cat, Now: 0,
		})
		m.Start()
		ag = agent.New(m, sink)
		ag.Start()
		d := workload.Install(m, lay, root.Fork(uint64(i)+200))
		d.Start()
		drivers = append(drivers, d)
	}

	// Two simulated hours of traffic streaming over the wire.
	sched.RunUntil(sim.Time(2 * sim.Hour))
	for i, m := range machines {
		drivers[i].Stop()
		m.Stop()
	}
	sched.RunUntil(sched.Now().Add(sim.Minute))
	for _, s := range sinks {
		if err := s.Close(); err != nil {
			log.Fatal(err)
		}
	}
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
	for _, e := range srv.Errors() {
		log.Fatal("server error: ", e)
	}
	if err := store.Finalize(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("server stored %d records (%d KB compressed) from %d machines\n",
		store.TotalRecords(), store.CompressedBytes()/1024, len(store.Machines()))

	// Analyse the server-side corpus.
	ds := &analysis.DataSet{}
	for i, name := range store.Machines() {
		recs, err := store.Records(name)
		if err != nil {
			log.Fatal(err)
		}
		mt := analysis.NewMachineTrace(name, machines[i].Category, recs)
		mt.ProcNames = machines[i].ProcNames
		ds.Machines = append(ds.Machines, mt)
	}
	r := report.Compute(ds)
	fmt.Println()
	fmt.Println(r.Section8())
}
