// Webcache: a personal-usage machine traced across a simulated day with
// snapshots at the start and end — the §5 content-change study. It shows
// where the file system changed (the profile tree and its WWW cache), and
// the §6.3 new-file lifetime population the browsing/temp churn creates.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/snapshot"
)

func main() {
	study := core.NewStudy(core.Config{
		Seed:            11,
		Machines:        1,
		Duration:        18 * sim.Hour, // spans the 4 a.m. snapshot
		WithNetwork:     true,
		SnapshotAtStart: true,
	})
	if err := study.Run(); err != nil {
		log.Fatal(err)
	}

	// Day-over-day content change (§5).
	var first, last *snapshot.Snapshot
	for _, s := range study.Snapshots {
		if s.Volume != `C:` {
			continue
		}
		if first == nil {
			first = s
		}
		last = s
	}
	if first == nil || last == first {
		log.Fatal("need at least two snapshots of C:")
	}
	d := snapshot.Compare(first, last)
	fmt.Printf("content change over %.0f simulated hours:\n",
		last.TakenAt.Sub(first.TakenAt).Seconds()/3600)
	fmt.Printf("  %d added, %d changed, %d removed files\n",
		len(d.Added), len(d.Changed), len(d.Removed))
	fmt.Printf("  fraction of changes under \\winnt\\profiles: %.0f%% (paper: 94%%)\n",
		100*d.FractionUnder(`\winnt\profiles`))
	profile := study.Nodes[0].Layout.Profile
	webcache := study.Nodes[0].Layout.WebCache
	fmt.Printf("  fraction under the WWW cache (%s): %.0f%% (paper: up to 90%%)\n",
		webcache, 100*d.FractionUnder(webcache))
	_ = profile

	// New-file lifetimes (§6.3, Figures 6/7).
	r, err := study.Results()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(r.Section6Lifetimes())
	fmt.Println(r.Figure6())
	fmt.Println(r.Figure7())
}
