// Heavytail: the §7 statistical study on one machine's trace — arrival
// counts at three time scales against a rate-matched Poisson synthesis
// (Figure 8), QQ fits against Normal and Pareto references (Figure 9),
// the log-log complementary distribution with its fitted α (Figure 10),
// and a Hill-estimator plot across k, the standard tail-index diagnostic.
package main

import (
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
)

func main() {
	study := core.NewStudy(core.Config{
		Seed:        3,
		Machines:    2,
		Duration:    8 * sim.Hour,
		WithNetwork: false,
	})
	if err := study.Run(); err != nil {
		log.Fatal(err)
	}
	r, err := study.Results()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(r.Figure8())
	fmt.Println(r.Figure9())
	fmt.Println(r.Figure10())

	// Hill plot: estimator stability across tail sizes.
	mt := r.OpenGapSampleMachine()
	gaps := analysis.AllOpenGaps(mt)
	ms := make([]float64, len(gaps))
	for i, g := range gaps {
		ms[i] = g * 1000
	}
	fmt.Println("Hill plot (α estimate vs number of tail order statistics k):")
	kmax := len(ms) / 10
	step := kmax / 8
	if step < 1 {
		step = 1
	}
	for _, pt := range stats.HillPlot(ms, step, kmax, step) {
		fmt.Printf("  k=%6d  α=%.2f\n", pt.K, pt.Alpha)
	}
	fmt.Println("\nα < 2 at every k: infinite variance — \"using Poisson processes and")
	fmt.Println("Normal distributions to model file system usage will lead to incorrect results\".")

	// Contrast: the same pipeline on the Poisson synthesis collapses.
	synth := stats.PoissonSynth(gaps, len(gaps), 1234)
	sms := make([]float64, len(synth))
	for i, g := range synth {
		sms[i] = g * 1000
	}
	fmt.Printf("\ncontrol: Hill α of the Poisson synthesis = %.1f (light tail, as expected)\n",
		stats.Hill(sms, len(sms)/50+2))
}
