// Devteam: a pool of development machines — the workload behind the
// paper's peak loads (5–8 MB precompiled-header and incremental-link
// files, §6.1) and its FastIO analysis (§10). The example runs the pool
// twice, once normally and once with an Opaque filter driver that
// implements no FastIO entry points, demonstrating the §10 warning that
// such filters "severely handicap the system".
package main

import (
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
)

func run(blocked bool) *stats.Summary {
	study := core.NewStudy(core.Config{
		Seed:          21,
		Machines:      4, // scaled mix still includes pool machines
		Duration:      3 * sim.Hour,
		WithNetwork:   false,
		FastIOBlocked: blocked,
	})
	if err := study.Run(); err != nil {
		log.Fatal(err)
	}
	r, err := study.Results()
	if err != nil {
		log.Fatal(err)
	}

	if !blocked {
		fmt.Println(r.Section9())
		fmt.Println(r.Section10())
		fmt.Println(r.Figure13())
		fmt.Println(r.Figure14())
	}
	// Compare on identical work: reads satisfied from the cache. The two
	// runs drift apart in total activity (heavy-tailed ON/OFF sources make
	// per-hour volumes wildly variable), but a cache-hit copy costs the
	// same either way, so its latency isolates the dispatch path.
	var lats []float64
	for _, mt := range r.DS.Machines {
		lats = append(lats, analysis.CacheHitReadLatencies(mt)...)
	}
	sum := stats.Summarize(lats)
	return &sum
}

func main() {
	normal := run(false)
	blocked := run(true)

	fmt.Println("FastIO ablation: cache-hit read latency with and without a FastIO-blocking filter")
	fmt.Printf("  normal stack:   median %.1f µs, p90 %.1f µs (n=%d)\n",
		normal.P50, normal.P90, normal.N)
	fmt.Printf("  opaque filter:  median %.1f µs, p90 %.1f µs (n=%d)\n",
		blocked.P50, blocked.P90, blocked.N)
	fmt.Printf("  median slowdown: %.1fx — §10: filters without FastIO pass-through\n",
		blocked.P50/normal.P50)
	fmt.Println("  severely handicap the system by blocking the direct cache path.")
}
