// Quickstart: simulate one traced Windows NT 4.0 machine for two hours,
// collect its filter-driver trace, and print the headline measurements —
// the smallest end-to-end use of the library.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sim"
)

func main() {
	study := core.NewStudy(core.Config{
		Seed:        7,
		Machines:    1,
		Duration:    2 * sim.Hour,
		WithNetwork: true,
	})
	if err := study.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collected %d trace records in 2 simulated hours\n\n", study.TotalEvents())

	r, err := study.Results()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(r.Table1())
	fmt.Println(r.Section8())
}
