package repro

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/sim"
)

// queryService builds (once) a columnar corpus on disk and a query
// service over it, shared by the query benchmarks.
var (
	queryOnce sync.Once
	querySvc  *query.Service
	queryErr  error
)

func queryService(b *testing.B) *query.Service {
	b.Helper()
	queryOnce.Do(func() {
		dir, err := os.MkdirTemp("", "bench-query-")
		if err != nil {
			queryErr = err
			return
		}
		s := core.NewStudy(core.Config{
			Seed:        11,
			Machines:    6,
			Duration:    sim.Hour,
			WithNetwork: true,
			Columnar:    true,
		})
		if queryErr = s.Run(); queryErr != nil {
			return
		}
		if queryErr = s.Save(dir); queryErr != nil {
			return
		}
		var c *query.Corpus
		if c, queryErr = query.OpenCorpus(dir, nil); queryErr != nil {
			return
		}
		querySvc = query.NewService(c, query.Config{Workers: 4})
	})
	if queryErr != nil {
		b.Fatal(queryErr)
	}
	return querySvc
}

// benchScanPath is a full-corpus scan (no kind predicate, so zone maps
// cannot skip blocks) projecting six columns, with a small response
// body: cold cost is the corpus pass, hit cost is a key lookup plus the
// body copy, so the ratio isolates what the cache buys.
const benchScanPath = "/v1/scan?cols=kind,start,offset,length,proc,filesize&limit=5"

func serveOnce(b *testing.B, h http.Handler, path string) []byte {
	b.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("%s: status %d", path, rec.Code)
	}
	body, _ := io.ReadAll(rec.Result().Body)
	return body
}

// BenchmarkQueryCold measures the uncached scan path: every iteration
// runs the full predicate-pushdown pass over the corpus. The cache is
// swept before each timed request by using a fresh service per run.
func BenchmarkQueryCold(b *testing.B) {
	svc := queryService(b)
	h := svc.Handler()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		// A fresh service shares the loaded corpus but starts with an
		// empty cache, so the timed request is always cold.
		cold := query.NewService(svc.Corpus(), query.Config{Workers: 4})
		h = cold.Handler()
		b.StartTimer()
		serveOnce(b, h, benchScanPath)
	}
}

// BenchmarkQueryCacheHit measures the cached path and enforces the
// acceptance floor: a hit must be at least 100x faster than the cold
// scan it replaces. The speedup is measured inside the benchmark so the
// guarantee travels with the tracked numbers.
func BenchmarkQueryCacheHit(b *testing.B) {
	svc := queryService(b)
	h := svc.Handler()
	warm := serveOnce(b, h, benchScanPath) // populate the cache

	// Cold reference: median of three scans through cache-empty
	// services sharing the loaded corpus — one sample is too noisy on a
	// contended core to anchor the speedup floor.
	coldRuns := make([]time.Duration, 3)
	for i := range coldRuns {
		coldSvc := query.NewService(svc.Corpus(), query.Config{Workers: 4})
		coldStart := time.Now()
		coldBody := serveOnce(b, coldSvc.Handler(), benchScanPath)
		coldRuns[i] = time.Since(coldStart)
		if !bytes.Equal(warm, coldBody) {
			b.Fatal("cold and cached bodies differ")
		}
	}
	sort.Slice(coldRuns, func(i, j int) bool { return coldRuns[i] < coldRuns[j] })
	coldDur := coldRuns[1]

	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		serveOnce(b, h, benchScanPath)
	}
	hitDur := time.Since(start) / time.Duration(b.N)
	b.StopTimer()

	if hitDur > 0 {
		speedup := float64(coldDur) / float64(hitDur)
		b.ReportMetric(speedup, "speedup_x")
		if speedup < 100 {
			b.Fatalf("cache hit only %.1fx faster than cold scan (floor: 100x)", speedup)
		}
	}
}
