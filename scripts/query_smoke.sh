#!/usr/bin/env sh
# query_smoke.sh — end-to-end check of the corpus query service.
#
# Builds fstrace and fsqueryd, generates a small columnar corpus, then
# drives the service through its contract surface: a cold scan, a cache
# hit proven by the obs counter, 429 backpressure under the built-in
# load generator at a starved admission pool, and a clean SIGTERM drain.
#
# Usage: scripts/query_smoke.sh [port]
set -eu

cd "$(dirname "$0")/.."

PORT="${1:-9481}"
WORK="$(mktemp -d)"
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

go build -o "$WORK/fstrace" ./cmd/fstrace
go build -o "$WORK/fsqueryd" ./cmd/fsqueryd

"$WORK/fstrace" -out "$WORK/traces" -machines 4 -hours 1 -seed 9 \
  -format columnar >/dev/null

"$WORK/fsqueryd" -dir "$WORK/traces" -addr "127.0.0.1:$PORT" \
  -workers 2 2>"$WORK/log" &
PID=$!

# Poll until the service answers (or dies early).
for _ in $(seq 1 50); do
  if curl -fsS "http://127.0.0.1:$PORT/healthz" >/dev/null 2>&1; then
    break
  fi
  kill -0 "$PID" 2>/dev/null || { echo "fsqueryd exited early:"; cat "$WORK/log"; exit 1; }
  sleep 0.2
done

SCAN="http://127.0.0.1:$PORT/v1/scan?kinds=Read,Write&cols=kind,start&limit=10"

# Cold scan, then the same query again: bodies must be byte-identical
# and the second must register as a cache hit in /metrics.
curl -fsS "$SCAN" > "$WORK/cold.json"
grep -q '"matched"' "$WORK/cold.json" || { echo "scan body lacks matched count"; cat "$WORK/cold.json"; exit 1; }
curl -fsS "$SCAN" > "$WORK/hit.json"
cmp -s "$WORK/cold.json" "$WORK/hit.json" \
  || { echo "cached body differs from cold body"; exit 1; }

HITS="$(curl -fsS "http://127.0.0.1:$PORT/metrics" | awk '/^query_cache_hits_total/ {print $2}')"
[ "${HITS:-0}" -ge 1 ] || { echo "query_cache_hits_total = ${HITS:-absent}, want >= 1"; exit 1; }

# A report artifact must serve and cache too.
curl -fsS "http://127.0.0.1:$PORT/v1/report?artifact=table2" | grep -q '"text"' \
  || { echo "report artifact failed"; exit 1; }

# Backpressure: a separate instance with a starved admission pool under
# its own load generator must refuse some requests with 429 and finish
# without transport errors.
LOAD="$("$WORK/fsqueryd" -dir "$WORK/traces" -addr "127.0.0.1:0" \
  -max-inflight 1 -max-queue 1 -load -load-clients 16 -load-requests 25 2>/dev/null)"
echo "$LOAD"
case "$LOAD" in
  *" rejected=0 "*) echo "load run never tripped the 429 path"; exit 1 ;;
  *" errors=0 "*) : ;;
  *) echo "load run saw errors"; exit 1 ;;
esac

# Clean drain: SIGTERM must finish in-flight work and exit 0.
kill -TERM "$PID"
rc=0
wait "$PID" || rc=$?
[ "$rc" -eq 0 ] || { echo "expected exit 0 on SIGTERM, got $rc"; cat "$WORK/log"; exit 1; }
grep -q "drained" "$WORK/log" || { echo "drain never logged"; cat "$WORK/log"; exit 1; }

echo "query smoke OK: cold scan, cache hit, 429 backpressure, clean drain"
