#!/usr/bin/env sh
# bench.sh — run the analysis-engine benchmarks and emit the tracked
# perf baseline:
#
#   BENCH_analysis.txt   raw `go test -bench` output (benchstat-ready:
#                        feed two of these to benchstat old.txt new.txt)
#   BENCH_analysis.json  one object per benchmark line, for dashboards
#
# Usage: scripts/bench.sh [benchtime] [count]
#   benchtime  go -benchtime value (default 3x)
#   count      repetitions per benchmark for benchstat (default 5)
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${1:-3x}"
COUNT="${2:-5}"
TXT=BENCH_analysis.txt
JSON=BENCH_analysis.json

go test -run NONE \
  -bench 'BenchmarkDataSetDecode|BenchmarkComputeResults|BenchmarkColumnarEncode|BenchmarkColumnarScan|BenchmarkColumnarCompute|BenchmarkQueryCold|BenchmarkQueryCacheHit' \
  -benchtime "$BENCHTIME" -count "$COUNT" . | tee "$TXT"

# The obs and span hot paths are nanosecond-scale: at a small -benchtime
# the numbers would be harness overhead (and RunParallel's setup shows up
# as phantom allocations), so they get a fixed high iteration count.
go test -run NONE -bench 'BenchmarkObsHotPath|BenchmarkSpanHotPath' \
  -benchtime 1000000x -count "$COUNT" . | tee -a "$TXT"

# Benchmark lines look like:
#   BenchmarkComputeResults/workers=4-8  3  408389528 ns/op  186966 instances
# Convert each into {"name":..., "iterations":..., "ns_per_op":..., metrics...}.
awk '
  BEGIN { print "[" ; n = 0 }
  /^Benchmark/ {
    line = sprintf("  {\"name\": \"%s\", \"iterations\": %s", $1, $2)
    for (i = 3; i + 1 <= NF; i += 2) {
      key = $(i + 1)
      gsub(/[^A-Za-z0-9_]/, "_", key)
      line = line sprintf(", \"%s\": %s", key, $i)
    }
    line = line "}"
    if (n++) print ","
    printf "%s", line
  }
  END { if (n) print "" ; print "]" }
' "$TXT" > "$JSON"

echo "wrote $TXT and $JSON" >&2
