#!/usr/bin/env sh
# trace_smoke.sh — end-to-end check of the span tracing surface.
#
# Builds fstrace and fsqueryd, generates a small columnar corpus, then
# drives a traced scan and asserts the whole tracing contract: the
# response carries X-Trace-Id, /debug/spans resolves that trace to a
# span tree covering admission → cache → fan-out → merge → encode, and
# /metrics carries a latency-histogram exemplar whose trace ID resolves
# in the flight recorder.
#
# Usage: scripts/trace_smoke.sh [port]
set -eu

cd "$(dirname "$0")/.."

PORT="${1:-9482}"
WORK="$(mktemp -d)"
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

go build -o "$WORK/fstrace" ./cmd/fstrace
go build -o "$WORK/fsqueryd" ./cmd/fsqueryd

"$WORK/fstrace" -out "$WORK/traces" -machines 4 -hours 1 -seed 9 \
  -format columnar >/dev/null

"$WORK/fsqueryd" -dir "$WORK/traces" -addr "127.0.0.1:$PORT" \
  -workers 2 -slow-ms 0 2>"$WORK/log" &
PID=$!

for _ in $(seq 1 50); do
  if curl -fsS "http://127.0.0.1:$PORT/healthz" >/dev/null 2>&1; then
    break
  fi
  kill -0 "$PID" 2>/dev/null || { echo "fsqueryd exited early:"; cat "$WORK/log"; exit 1; }
  sleep 0.2
done

SCAN="http://127.0.0.1:$PORT/v1/scan?kinds=Read,Write&cols=kind,start&limit=10"

# A traced scan must hand back its trace ID.
curl -fsS -D "$WORK/hdrs" "$SCAN" >/dev/null
TID="$(awk 'tolower($1) == "x-trace-id:" {gsub("\r", "", $2); print $2}' "$WORK/hdrs")"
[ -n "$TID" ] || { echo "no X-Trace-Id header on scan response"; cat "$WORK/hdrs"; exit 1; }

# The flight recorder must resolve it to the full stage tree.
curl -fsS "http://127.0.0.1:$PORT/debug/spans?trace=$TID" > "$WORK/spans"
fail=0
for stage in admit cache scan merge encode; do
  if ! grep -q " $stage" "$WORK/spans"; then
    echo "MISSING stage: $stage"
    fail=1
  fi
done
[ "$fail" -eq 0 ] || { echo "--- /debug/spans?trace=$TID ---"; cat "$WORK/spans"; exit 1; }
grep -q "blocks_scanned=" "$WORK/spans" \
  || { echo "machine scan spans lack the block ledger"; cat "$WORK/spans"; exit 1; }

# The recent-traces listing must include the scan too.
curl -fsS "http://127.0.0.1:$PORT/debug/spans" | grep -q "$TID" \
  || { echo "trace $TID absent from /debug/spans listing"; exit 1; }

# /metrics must carry a latency exemplar resolvable in the recorder.
EXTID="$(curl -fsS "http://127.0.0.1:$PORT/metrics" \
  | awk '/^# exemplar query_request_wall_us_bucket/ {
      if (match($0, /trace_id=[0-9a-f]+/)) { print substr($0, RSTART+9, RLENGTH-9); exit }
    }')"
[ -n "$EXTID" ] || { echo "no exemplar comment in /metrics"; exit 1; }
curl -fsS "http://127.0.0.1:$PORT/debug/spans?trace=$EXTID" >/dev/null \
  || { echo "exemplar trace $EXTID not resolvable in /debug/spans"; exit 1; }

kill -TERM "$PID"
wait "$PID" || true

echo "trace smoke OK: X-Trace-Id served, span tree complete, exemplar resolvable"
