#!/usr/bin/env sh
# metrics_smoke.sh — end-to-end check of the live observability surface.
#
# Builds fsfleet, starts a small study with -metrics-addr, polls the
# /metrics endpoint while the fleet runs, asserts that families from
# every instrumented layer are being served, then interrupts the run and
# asserts the end-of-run obs.json snapshot landed beside the checkpoints.
#
# Usage: scripts/metrics_smoke.sh [port]
set -eu

cd "$(dirname "$0")/.."

PORT="${1:-9473}"
WORK="$(mktemp -d)"
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

go build -o "$WORK/fsfleet" ./cmd/fsfleet

# A fleet sized to run for tens of seconds, so /metrics is live mid-run.
"$WORK/fsfleet" -machines 8 -hours 6 -workers 2 \
  -out "$WORK/traces" -checkpoint-dir "$WORK/ckpt" \
  -metrics-addr "127.0.0.1:$PORT" -progress 0 2>"$WORK/log" &
PID=$!

# Poll until the endpoint serves (or the run dies early).
METRICS=""
for _ in $(seq 1 50); do
  if METRICS="$(curl -fsS "http://127.0.0.1:$PORT/metrics" 2>/dev/null)" \
     && [ -n "$METRICS" ]; then
    break
  fi
  kill -0 "$PID" 2>/dev/null || { echo "fsfleet exited early:"; cat "$WORK/log"; exit 1; }
  sleep 0.2
done
[ -n "$METRICS" ] || { echo "no response from /metrics"; cat "$WORK/log"; exit 1; }

# Give the fleet a moment to do real work, then sample again so the
# simulation families carry non-zero values.
sleep 3
METRICS="$(curl -fsS "http://127.0.0.1:$PORT/metrics")"

fail=0
for fam in \
  iomgr_irp_dispatches_total \
  cachemgr_read_requests_total \
  tracedrv_records_total \
  fleet_shard_sim_now_ticks \
  fleet_events_per_sec \
  study_machines; do
  if ! printf '%s\n' "$METRICS" | grep -q "^$fam"; then
    echo "MISSING family: $fam"
    fail=1
  fi
done
[ "$fail" -eq 0 ] || { echo "--- /metrics ---"; printf '%s\n' "$METRICS" | head -50; exit 1; }

# pprof must be mounted on the same mux.
curl -fsS "http://127.0.0.1:$PORT/debug/pprof/" >/dev/null

# Interrupt the run; the engine must still write the telemetry snapshot.
kill -TERM "$PID"
rc=0
wait "$PID" || rc=$?
[ "$rc" -eq 130 ] || { echo "expected exit 130 on SIGTERM, got $rc"; cat "$WORK/log"; exit 1; }
[ -s "$WORK/ckpt/obs.json" ] || { echo "missing obs.json beside checkpoints"; ls -la "$WORK/ckpt" || true; exit 1; }
grep -q iomgr_irp_dispatches_total "$WORK/ckpt/obs.json" \
  || { echo "obs.json lacks instrumented families"; exit 1; }

echo "metrics smoke OK: live /metrics + pprof served, obs.json written on interrupt"
