#!/usr/bin/env sh
# colstore_smoke.sh — end-to-end check of the columnar corpus pipeline.
#
# Traces a small fleet with -format both (row *.trz beside columnar
# *.fsc), proves row/columnar SHA-256 equivalence with `fscorpus verify`,
# inspects layout stats, runs a pushdown scan, converts the columnar
# corpus back to row streams and asserts the round-trip reproduces the
# original row bytes exactly.
#
# Usage: scripts/colstore_smoke.sh
set -eu

cd "$(dirname "$0")/.."

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

go build -o "$WORK/fstrace" ./cmd/fstrace
go build -o "$WORK/fscorpus" ./cmd/fscorpus

"$WORK/fstrace" -machines 4 -hours 1 -seed 9 -workers 2 \
  -format both -out "$WORK/traces"

ls "$WORK/traces"/*.trz >/dev/null
ls "$WORK/traces"/*.fsc >/dev/null

# Digest equivalence: every segment's footer SHA-256 must match its row
# stream's logical bytes.
"$WORK/fscorpus" verify "$WORK/traces" | tee "$WORK/verify.out"
grep -q 'row ≡ columnar' "$WORK/verify.out"
if grep -q FAIL "$WORK/verify.out"; then
  echo "FAIL: verification failures" >&2
  exit 1
fi

# Layout stats and a pushdown scan must run cleanly.
"$WORK/fscorpus" stats "$WORK/traces" >/dev/null
"$WORK/fscorpus" scan -kinds read,write "$WORK/traces" | tee "$WORK/scan.out"
grep -q 'pushdown:' "$WORK/scan.out"

# Columnar -> row round trip: the regenerated row streams must be
# byte-identical to the originals (same records, same DEFLATE encoder).
"$WORK/fscorpus" convert -to row -out "$WORK/rows" "$WORK/traces"
for f in "$WORK/traces"/*.trz; do
  cmp "$f" "$WORK/rows/$(basename "$f")"
done

echo "colstore smoke OK" >&2
